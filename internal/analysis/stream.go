package analysis

import (
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
	"panoptes/internal/pipeline"
)

// This file holds the incremental (streaming) forms of the package's
// batch analyses. Each analyzer folds committed flows into running
// state as the campaign's commit tap delivers them, supports attempt
// retraction via a pipeline.Journal, and finalizes to output
// byte-identical to the corresponding batch function — which is now a
// thin wrapper that replays a store through the same analyzer (one
// code path, two drive modes). All analyzers canonicalize their output
// at Finalize (sorted rows, per-browser maps), so results do not
// depend on how concurrent browsers' commit streams interleave.

// Fig2Analyzer counts engine/native requests per browser (Figure 2).
type Fig2Analyzer struct {
	browsers []string

	mu     sync.Mutex
	j      pipeline.Journal
	engine map[string]int
	native map[string]int
}

// NewFig2Analyzer builds an analyzer producing rows for browsers.
func NewFig2Analyzer(browsers []string) *Fig2Analyzer {
	return &Fig2Analyzer{browsers: browsers, engine: map[string]int{}, native: map[string]int{}}
}

// Observe tallies one committed flow by its stamped origin.
func (a *Fig2Analyzer) Observe(f *capture.Flow) { a.observe(f, f.Origin) }

// observe is the shared per-flow step; batch replay forces the origin
// of the store it is replaying (hand-built stores may lack stamps).
func (a *Fig2Analyzer) observe(f *capture.Flow, o capture.Origin) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.native
	if o == capture.OriginEngine {
		m = a.engine
	}
	b := f.Browser
	m[b]++
	a.j.Note(f.Attempt, func() { m[b]-- })
}

// Retract undoes the attempt's counts.
func (a *Fig2Analyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *Fig2Analyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all counts.
func (a *Fig2Analyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.engine = map[string]int{}
	a.native = map[string]int{}
	a.j.Reset()
}

// Rows assembles the Figure 2 rows in browser-list order.
func (a *Fig2Analyzer) Rows() []Fig2Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]Fig2Row, 0, len(a.browsers))
	for _, b := range a.browsers {
		r := Fig2Row{Browser: b, Engine: a.engine[b], Native: a.native[b]}
		if r.Engine > 0 {
			r.Ratio = float64(r.Native) / float64(r.Engine)
		}
		rows = append(rows, r)
	}
	return rows
}

// Finalize implements pipeline.Analyzer.
func (a *Fig2Analyzer) Finalize() any { return a.Rows() }

// Fig3Analyzer tracks distinct native-contacted domains per browser
// and their ad/analytics share (Figure 3). Domains are refcounted so
// retraction can forget a domain the retracted attempt alone contacted.
type Fig3Analyzer struct {
	browsers []string
	list     *hostlist.List

	mu    sync.Mutex
	j     pipeline.Journal
	hosts map[string]map[string]int // browser -> host -> flow refcount
}

// NewFig3Analyzer builds an analyzer classifying hosts against list.
func NewFig3Analyzer(list *hostlist.List, browsers []string) *Fig3Analyzer {
	return &Fig3Analyzer{browsers: browsers, list: list, hosts: map[string]map[string]int{}}
}

// Observe tallies one committed native flow's destination host.
func (a *Fig3Analyzer) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	a.observe(f)
}

func (a *Fig3Analyzer) observe(f *capture.Flow) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, h := f.Browser, f.Host
	if a.hosts[b] == nil {
		a.hosts[b] = map[string]int{}
	}
	a.hosts[b][h]++
	a.j.Note(f.Attempt, func() {
		if a.hosts[b][h]--; a.hosts[b][h] == 0 {
			delete(a.hosts[b], h)
		}
	})
}

// Retract undoes the attempt's host refcounts.
func (a *Fig3Analyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *Fig3Analyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all state.
func (a *Fig3Analyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hosts = map[string]map[string]int{}
	a.j.Reset()
}

// Rows assembles the Figure 3 rows in browser-list order.
func (a *Fig3Analyzer) Rows() []Fig3Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]Fig3Row, 0, len(a.browsers))
	for _, b := range a.browsers {
		domains := a.hosts[b]
		row := Fig3Row{Browser: b, DistinctDomains: len(domains)}
		for d := range domains {
			if a.list.AdRelated(d) {
				row.AdDomains++
				row.AdDomainList = append(row.AdDomainList, d)
			}
		}
		sort.Strings(row.AdDomainList)
		if row.DistinctDomains > 0 {
			row.AdPct = 100 * float64(row.AdDomains) / float64(row.DistinctDomains)
		}
		rows = append(rows, row)
	}
	return rows
}

// Finalize implements pipeline.Analyzer.
func (a *Fig3Analyzer) Finalize() any { return a.Rows() }

// Fig4Analyzer sums outgoing request bytes per browser and origin
// (Figure 4). It doubles as the proxy-side source for the
// kernel-vs-proxy volume cross-check.
type Fig4Analyzer struct {
	browsers []string

	mu     sync.Mutex
	j      pipeline.Journal
	engine map[string]int64
	native map[string]int64
}

// NewFig4Analyzer builds an analyzer producing rows for browsers.
func NewFig4Analyzer(browsers []string) *Fig4Analyzer {
	return &Fig4Analyzer{browsers: browsers, engine: map[string]int64{}, native: map[string]int64{}}
}

// Observe sums one committed flow's request bytes by stamped origin.
func (a *Fig4Analyzer) Observe(f *capture.Flow) { a.observe(f, f.Origin) }

func (a *Fig4Analyzer) observe(f *capture.Flow, o capture.Origin) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.native
	if o == capture.OriginEngine {
		m = a.engine
	}
	b := f.Browser
	n := int64(f.ReqBytes)
	m[b] += n
	a.j.Note(f.Attempt, func() { m[b] -= n })
}

// Retract undoes the attempt's byte sums.
func (a *Fig4Analyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *Fig4Analyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all sums.
func (a *Fig4Analyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.engine = map[string]int64{}
	a.native = map[string]int64{}
	a.j.Reset()
}

// Rows assembles the Figure 4 rows in browser-list order.
func (a *Fig4Analyzer) Rows() []Fig4Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]Fig4Row, 0, len(a.browsers))
	for _, b := range a.browsers {
		r := Fig4Row{Browser: b, EngineBytes: a.engine[b], NativeBytes: a.native[b]}
		if r.EngineBytes > 0 {
			r.OverheadPct = 100 * float64(r.NativeBytes) / float64(r.EngineBytes)
		}
		rows = append(rows, r)
	}
	return rows
}

// ReqBytesTotal returns a browser's engine+native request bytes — the
// proxy side of CrossCheckVolumes.
func (a *Fig4Analyzer) ReqBytesTotal(browser string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.engine[browser] + a.native[browser]
}

// Finalize implements pipeline.Analyzer.
func (a *Fig4Analyzer) Finalize() any { return a.Rows() }

// dnsPick is a browser's best resolver evidence so far.
type dnsPick struct {
	mode string
	id   int64 // flow ID of the evidence; highest wins ("last" in flow order)
}

// DNSAnalyzer classifies each browser's resolver path from its native
// flows ("doh-cloudflare", "doh-google" or "local"). The batch
// DNSUsage let the last matching flow win; flow IDs increase along a
// browser's sequential commit stream, so highest-ID evidence is the
// same rule expressed order-insensitively.
type DNSAnalyzer struct {
	browsers []string

	mu   sync.Mutex
	j    pipeline.Journal
	best map[string]dnsPick
}

// NewDNSAnalyzer builds an analyzer reporting on browsers.
func NewDNSAnalyzer(browsers []string) *DNSAnalyzer {
	return &DNSAnalyzer{browsers: browsers, best: map[string]dnsPick{}}
}

// Observe inspects one committed native flow for resolver evidence.
func (a *DNSAnalyzer) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	a.observe(f)
}

func (a *DNSAnalyzer) observe(f *capture.Flow) {
	var mode string
	switch f.Host {
	case "cloudflare-dns.com":
		mode = "doh-cloudflare"
	case "dns.google":
		mode = "doh-google"
	default:
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := f.Browser
	prev, had := a.best[b]
	if had && f.ID <= prev.id {
		return
	}
	a.best[b] = dnsPick{mode: mode, id: f.ID}
	a.j.Note(f.Attempt, func() {
		if had {
			a.best[b] = prev
		} else {
			delete(a.best, b)
		}
	})
}

// Retract undoes the attempt's evidence.
func (a *DNSAnalyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *DNSAnalyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all evidence.
func (a *DNSAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.best = map[string]dnsPick{}
	a.j.Reset()
}

// Usage returns the per-browser resolver classification.
func (a *DNSAnalyzer) Usage() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.browsers))
	for _, b := range a.browsers {
		if p, ok := a.best[b]; ok {
			out[b] = p.mode
		} else {
			out[b] = "local"
		}
	}
	return out
}

// Finalize implements pipeline.Analyzer.
func (a *DNSAnalyzer) Finalize() any { return a.Usage() }

// TrackableAnalyzer mines native flows for persistent identifiers and
// counts their sightings incrementally (the §3.2 track-across-sessions
// signal). Per flow it first records newly seen identifier values
// (values travel in the flow that introduces them), then counts the
// flow as a sighting of any known identifier of the same browser and
// host that appears in its query or body — so a stable identifier's
// sighting count equals the batch pass over the same flow order.
type TrackableAnalyzer struct {
	mu        sync.Mutex
	j         pipeline.Journal
	values    map[string]map[string][]string // browser -> host?param -> first-seen values
	sightings map[string]map[string]int      // browser -> host?param -> carrying flows
}

// NewTrackableAnalyzer builds an empty miner.
func NewTrackableAnalyzer() *TrackableAnalyzer {
	return &TrackableAnalyzer{
		values:    map[string]map[string][]string{},
		sightings: map[string]map[string]int{},
	}
}

// Observe mines one committed native flow.
func (a *TrackableAnalyzer) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	a.observe(f)
}

func (a *TrackableAnalyzer) observe(f *capture.Flow) {
	hits := leak.ExtractIDs(f) // parsing happens outside the state lock
	hay := f.RawQuery + string(f.Body)
	if dec, err := url.QueryUnescape(f.RawQuery); err == nil {
		hay += dec
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := f.Browser
	for _, hit := range hits {
		key := f.Host + "?" + hit.Key
		if a.values[b] == nil {
			a.values[b] = map[string][]string{}
		}
		vals := a.values[b][key]
		if !slices.Contains(vals, hit.Value) {
			idx := len(vals)
			a.values[b][key] = append(vals, hit.Value)
			k := key
			a.j.Note(f.Attempt, func() {
				// Undos run newest-first, so the value is still last.
				a.values[b][k] = a.values[b][k][:idx]
			})
		}
	}
	for key, vals := range a.values[b] {
		host := key[:strings.IndexByte(key, '?')]
		if host != f.Host {
			continue
		}
		for _, v := range vals {
			if strings.Contains(hay, v) {
				if a.sightings[b] == nil {
					a.sightings[b] = map[string]int{}
				}
				a.sightings[b][key]++
				k := key
				a.j.Note(f.Attempt, func() { a.sightings[b][k]-- })
				break
			}
		}
	}
}

// Retract undoes the attempt's values and sightings.
func (a *TrackableAnalyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *TrackableAnalyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all mined identifiers.
func (a *TrackableAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.values = map[string]map[string][]string{}
	a.sightings = map[string]map[string]int{}
	a.j.Reset()
}

// IDs reports the mined identifiers, most-persistent first (fewest
// distinct values over most sightings).
func (a *TrackableAnalyzer) IDs() []TrackableID {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []TrackableID
	for browser, byKey := range a.values {
		for key, vals := range byKey {
			if len(vals) == 0 {
				continue // fully retracted
			}
			i := strings.IndexByte(key, '?')
			out = append(out, TrackableID{
				Browser: browser, Host: key[:i], Param: key[i+1:],
				Values:    append([]string(nil), vals...),
				Sightings: a.sightings[browser][key],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// Stable (1 value) and frequently seen first.
		if len(out[i].Values) != len(out[j].Values) {
			return len(out[i].Values) < len(out[j].Values)
		}
		if out[i].Sightings != out[j].Sightings {
			return out[i].Sightings > out[j].Sightings
		}
		if out[i].Browser+out[i].Host != out[j].Browser+out[j].Host {
			return out[i].Browser+out[i].Host < out[j].Browser+out[j].Host
		}
		return out[i].Param < out[j].Param
	})
	return out
}

// Finalize implements pipeline.Analyzer.
func (a *TrackableAnalyzer) Finalize() any { return a.IDs() }

// Listing1Analyzer captures the paper's Listing 1 exemplar: the first
// Opera OLeads ad request (lowest flow ID — Opera's commit stream is
// sequential, so that is the first in flow order).
type Listing1Analyzer struct {
	mu    sync.Mutex
	j     pipeline.Journal
	found bool
	id    int64
	body  string
	query string
}

// NewListing1Analyzer builds an empty exemplar capturer.
func NewListing1Analyzer() *Listing1Analyzer { return &Listing1Analyzer{} }

// Observe checks one committed native flow against the exemplar shape.
func (a *Listing1Analyzer) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	a.observe(f)
}

func (a *Listing1Analyzer) observe(f *capture.Flow) {
	if f.Browser != "Opera" || f.Host != "s-odx.oleads.com" || f.Method != "POST" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.found && f.ID >= a.id {
		return
	}
	prevFound, prevID, prevBody, prevQuery := a.found, a.id, a.body, a.query
	a.found, a.id, a.body, a.query = true, f.ID, string(f.Body), f.RawQuery
	a.j.Note(f.Attempt, func() {
		a.found, a.id, a.body, a.query = prevFound, prevID, prevBody, prevQuery
	})
}

// Retract undoes the attempt's capture.
func (a *Listing1Analyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *Listing1Analyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops the capture.
func (a *Listing1Analyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.found, a.id, a.body, a.query = false, 0, "", ""
	a.j.Reset()
}

// Result returns the exemplar body and query ("" when absent).
func (a *Listing1Analyzer) Result() (body, query string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.body, a.query
}

// Finalize implements pipeline.Analyzer.
func (a *Listing1Analyzer) Finalize() any {
	body, query := a.Result()
	return [2]string{body, query}
}

// TransportAnalyzer counts committed flows per browser and transport
// (h1, h2, ws, doh) — the per-transport coverage matrix that shows which
// parts of a browser's traffic the capture plane would have missed with
// a single-transport dissector.
type TransportAnalyzer struct {
	browsers []string

	mu     sync.Mutex
	j      pipeline.Journal
	counts map[string]map[string]int // browser -> transport -> flows
}

// NewTransportAnalyzer builds an analyzer producing rows for browsers.
func NewTransportAnalyzer(browsers []string) *TransportAnalyzer {
	return &TransportAnalyzer{browsers: browsers, counts: map[string]map[string]int{}}
}

// Observe tallies one committed flow by its transport tag.
func (a *TransportAnalyzer) Observe(f *capture.Flow) { a.observe(f) }

func (a *TransportAnalyzer) observe(f *capture.Flow) {
	t := f.TransportOrDefault()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := f.Browser
	if a.counts[b] == nil {
		a.counts[b] = map[string]int{}
	}
	a.counts[b][t]++
	a.j.Note(f.Attempt, func() { a.counts[b][t]-- })
}

// Retract undoes the attempt's counts.
func (a *TransportAnalyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *TransportAnalyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all counts.
func (a *TransportAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts = map[string]map[string]int{}
	a.j.Reset()
}

// Rows assembles the coverage rows in browser-list order.
func (a *TransportAnalyzer) Rows() []TransportRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]TransportRow, 0, len(a.browsers))
	for _, b := range a.browsers {
		c := a.counts[b]
		r := TransportRow{
			Browser: b,
			H1:      c[capture.TransportH1],
			H2:      c[capture.TransportH2],
			WS:      c[capture.TransportWS],
			DoH:     c[capture.TransportDoH],
		}
		r.Total = r.H1 + r.H2 + r.WS + r.DoH
		rows = append(rows, r)
	}
	return rows
}

// Finalize implements pipeline.Analyzer.
func (a *TransportAnalyzer) Finalize() any { return a.Rows() }

// Suite bundles the full set of streaming analyzers a campaign world
// registers on its commit tap: every figure, table and leak analysis
// the batch layer offers, computed incrementally in a single pass.
type Suite struct {
	names []string

	Fig2       *Fig2Analyzer
	Fig3       *Fig3Analyzer
	Fig4       *Fig4Analyzer
	PII        *pii.MatrixAnalyzer
	LeakNative *leak.StreamScanner
	LeakEngine *leak.StreamScanner
	DNS        *DNSAnalyzer
	Trackable  *TrackableAnalyzer
	Listing1   *Listing1Analyzer
	Transport  *TransportAnalyzer
}

// NewSuite builds the analyzers for the given browser fleet and
// ad-classification host list.
func NewSuite(list *hostlist.List, browsers []string) *Suite {
	return &Suite{
		names:      append([]string(nil), browsers...),
		Fig2:       NewFig2Analyzer(browsers),
		Fig3:       NewFig3Analyzer(list, browsers),
		Fig4:       NewFig4Analyzer(browsers),
		PII:        pii.NewMatrixAnalyzer(browsers),
		LeakNative: leak.NewStreamScanner(leak.NewDetector(), capture.OriginNative),
		LeakEngine: leak.NewStreamScanner(leak.NewDetector(), capture.OriginEngine),
		DNS:        NewDNSAnalyzer(browsers),
		Trackable:  NewTrackableAnalyzer(),
		Listing1:   NewListing1Analyzer(),
		Transport:  NewTransportAnalyzer(browsers),
	}
}

// Names returns the browser list the suite reports on, in fleet order.
func (s *Suite) Names() []string { return append([]string(nil), s.names...) }

// Register wires every analyzer onto the pipeline in a fixed order.
func (s *Suite) Register(p *pipeline.Pipeline) {
	p.Register("fig2", s.Fig2)
	p.Register("fig3", s.Fig3)
	p.Register("fig4", s.Fig4)
	p.Register("table2", s.PII)
	p.Register("leaks-native", s.LeakNative)
	p.Register("leaks-engine", s.LeakEngine)
	p.Register("dns", s.DNS)
	p.Register("trackable", s.Trackable)
	p.Register("listing1", s.Listing1)
	p.Register("transport", s.Transport)
}
