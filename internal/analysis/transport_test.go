package analysis_test

import (
	"net/http"
	"testing"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/dnsmsg"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
	"panoptes/internal/pipeline"
)

// transportSuite builds a one-browser streaming suite wired onto a
// fresh pipeline, the minimal harness for feeding synthetic flows.
func transportSuite(browser string) (*analysis.Suite, *pipeline.Pipeline) {
	s := analysis.NewSuite(hostlist.New(), []string{browser})
	p := pipeline.New()
	s.Register(p)
	return s, p
}

func packedQuery(t *testing.T, name string) []byte {
	t.Helper()
	b, err := dnsmsg.NewQuery(1, name, dnsmsg.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDoHOnlyPIILeak pins the acceptance scenario: a PII value present
// ONLY inside a DoH query body (smuggled as the qname's first label)
// must surface in the streaming Table 2 matrix. Nothing else about the
// flow — path, query string, headers — carries the value.
func TestDoHOnlyPIILeak(t *testing.T) {
	s, p := transportSuite("SynthBrowser")
	p.Observe(&capture.Flow{
		ID: 1, Browser: "SynthBrowser", Origin: capture.OriginNative,
		Method: "POST", Scheme: "https", Host: "t.vendor.example", Path: "/dns-query",
		Transport: capture.TransportDoH, ALPN: "h2",
		Headers: http.Header{"Content-Type": []string{"application/dns-message"}},
		Body:    packedQuery(t, "cc-gr.t.vendor.example"),
	})
	if !s.PII.Matrix().Leaked("SynthBrowser", pii.AttrCountry) {
		t.Fatal("Country carried only in a DoH query body was not detected")
	}

	// Control: the same flow with an innocuous qname leaks nothing.
	s2, p2 := transportSuite("SynthBrowser")
	p2.Observe(&capture.Flow{
		ID: 1, Browser: "SynthBrowser", Origin: capture.OriginNative,
		Method: "POST", Scheme: "https", Host: "t.vendor.example", Path: "/dns-query",
		Transport: capture.TransportDoH,
		Headers:   http.Header{"Content-Type": []string{"application/dns-message"}},
		Body:      packedQuery(t, "updates.vendor.example"),
	})
	if s2.PII.Matrix().Leaked("SynthBrowser", pii.AttrCountry) {
		t.Fatal("innocuous DoH qname flagged as a Country leak")
	}
}

// TestWSOnlyHistoryLeak pins the second acceptance scenario: a visited
// URL carried ONLY inside a WebSocket telemetry frame's payload must be
// found by the streaming history-leak scanner as a full-URL leak.
func TestWSOnlyHistoryLeak(t *testing.T) {
	const visit = "https://secret-site.example/account/settings"
	s, p := transportSuite("SynthBrowser")
	p.Observe(&capture.Flow{
		ID: 1, Browser: "SynthBrowser", Origin: capture.OriginNative,
		Method: "WS", Scheme: "wss", Host: "push.vendor.example", Path: "/push/v1/telemetry",
		Transport: capture.TransportWS, ALPN: "http/1.1",
		VisitURL: visit,
		Body:     []byte(`{"event":"page_visit","seq":1,"url":"` + visit + `"}`),
	})
	findings := s.LeakNative.Findings()
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (%+v)", len(findings), findings)
	}
	f := findings[0]
	if f.Kind != leak.KindFullURL {
		t.Errorf("kind = %v, want %v", f.Kind, leak.KindFullURL)
	}
	if f.Host != "push.vendor.example" {
		t.Errorf("host = %q, want push.vendor.example", f.Host)
	}

	// Control: a frame that does not echo the visit leaks nothing.
	s2, p2 := transportSuite("SynthBrowser")
	p2.Observe(&capture.Flow{
		ID: 1, Browser: "SynthBrowser", Origin: capture.OriginNative,
		Method: "WS", Scheme: "wss", Host: "push.vendor.example", Path: "/push/v1/telemetry",
		Transport: capture.TransportWS,
		VisitURL:  visit,
		Body:      []byte(`{"event":"heartbeat","seq":2}`),
	})
	if got := s2.LeakNative.Findings(); len(got) != 0 {
		t.Fatalf("heartbeat frame produced findings: %+v", got)
	}
}

// TestDoHResolverQueriesAreNotHistoryLeaks pins the carve-out: a DoH
// query to a public resolver necessarily names the visited host — that
// is name resolution, reported by the DNS-usage split, not
// exfiltration. The same message POSTed anywhere else still counts.
func TestDoHResolverQueriesAreNotHistoryLeaks(t *testing.T) {
	const visit = "https://secret-site.example/account"
	mkFlow := func(host string) *capture.Flow {
		return &capture.Flow{
			ID: 1, Browser: "SynthBrowser", Origin: capture.OriginNative,
			Method: "POST", Scheme: "https", Host: host, Path: "/dns-query",
			Transport: capture.TransportDoH,
			Headers:   http.Header{"Content-Type": []string{"application/dns-message"}},
			VisitURL:  visit,
			Body:      packedQuery(t, "secret-site.example"),
		}
	}
	s, p := transportSuite("SynthBrowser")
	p.Observe(mkFlow("dns.google"))
	if got := s.LeakNative.Findings(); len(got) != 0 {
		t.Fatalf("resolver DoH query flagged as history leak: %+v", got)
	}
	s2, p2 := transportSuite("SynthBrowser")
	p2.Observe(mkFlow("t.vendor.example"))
	got := s2.LeakNative.Findings()
	if len(got) != 1 || got[0].Kind != leak.KindDomainOnly {
		t.Fatalf("vendor-bound DoH query with visited hostname not flagged: %+v", got)
	}
}

// TestTransportCoverageFromStudy checks the per-browser transport rows
// against the fleet's profiled behaviours after a full crawl: every
// browser speaks h1; the h2-capable vendors produce frame-level flows;
// Dolphin's telemetry rides WebSocket frames; DoH browsers produce
// RFC 8484 flows; and the batch replay agrees with the streaming rows.
func TestTransportCoverageFromStudy(t *testing.T) {
	w, names := study(t)
	rows := w.Suite.Transport.Rows()
	byName := map[string]analysis.TransportRow{}
	for _, r := range rows {
		byName[r.Browser] = r
	}
	for _, n := range names {
		r := byName[n]
		if r.H1 == 0 {
			t.Errorf("%s: no h1 flows captured", n)
		}
		if r.Total != r.H1+r.H2+r.WS+r.DoH {
			t.Errorf("%s: total %d != sum of transports", n, r.Total)
		}
	}
	for _, n := range []string{"Chrome", "Edge", "Brave"} {
		if byName[n].H2 == 0 {
			t.Errorf("%s profiles an h2 vendor host but captured no h2 flows", n)
		}
	}
	if byName["Dolphin"].WS == 0 {
		t.Error("Dolphin captured no WebSocket telemetry flows")
	}
	if byName["Dolphin"].H2 != 0 {
		t.Errorf("Dolphin unexpectedly spoke h2 (%d flows)", byName["Dolphin"].H2)
	}
	if byName["Chrome"].DoH == 0 || byName["Whale"].DoH == 0 {
		t.Error("DoH browsers captured no doh-transport flows")
	}

	batch := analysis.TransportCoverage(w.DB, names)
	if len(batch) != len(rows) {
		t.Fatalf("batch rows = %d, streaming rows = %d", len(batch), len(rows))
	}
	for i := range rows {
		if batch[i] != rows[i] {
			t.Errorf("row %d: batch %+v != streaming %+v", i, batch[i], rows[i])
		}
	}
}
