// Package analysis computes the paper's results from captured traffic:
// Figure 2 (engine vs native request counts and their ratio), Figure 3
// (share of native-contacted domains that are ad/analytics-related),
// Figure 4 (outgoing byte volumes), Figure 5 (idle phone-home
// timelines), Table 2 (the PII matrix, via internal/pii), the §3.2
// history-leak findings (via internal/leak), the §3.4 international
// transfer mapping, and the DoH-vs-stub resolver split.
//
// Everything here derives from the flow databases the MITM proxy
// produced — the same vantage the paper's authors had.
package analysis

import (
	"fmt"
	"net"
	"sort"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/ebpfsim"
	"panoptes/internal/geoip"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
)

// The batch functions below are the replay drive mode of the
// incremental analyzers in stream.go: each builds a fresh analyzer,
// replays the store(s) through it in insertion order and finalizes.
// Streaming a campaign through the commit tap produces byte-identical
// results (enforced by TestFaultCampaignDeterminism's golden check).

// Fig2Row is one browser's engine/native request counts (Figure 2).
type Fig2Row struct {
	Browser string
	Engine  int
	Native  int
	Ratio   float64 // native / engine
}

// Fig2 computes request counts per browser by replaying both databases
// through a Fig2Analyzer. The replay forces each store's origin, so
// hand-built stores without origin stamps tally correctly.
func Fig2(db *capture.DB, browsers []string) []Fig2Row {
	a := NewFig2Analyzer(browsers)
	for _, f := range db.Engine.All() {
		a.observe(f, capture.OriginEngine)
	}
	for _, f := range db.Native.All() {
		a.observe(f, capture.OriginNative)
	}
	return a.Rows()
}

// Fig3Row is one browser's native-destination ad share (Figure 3).
type Fig3Row struct {
	Browser         string
	DistinctDomains int
	AdDomains       int
	AdPct           float64
	AdDomainList    []string
}

// Fig3 computes, per browser, the share of distinct domains (FQDNs, as
// captured) receiving native requests that the hosts list classifies as
// ad/analytics-related, by replaying the native store through a
// Fig3Analyzer.
func Fig3(native *capture.Store, list *hostlist.List, browsers []string) []Fig3Row {
	a := NewFig3Analyzer(list, browsers)
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.Rows()
}

// Fig4Row is one browser's outgoing byte volumes (Figure 4).
type Fig4Row struct {
	Browser     string
	EngineBytes int64
	NativeBytes int64
	OverheadPct float64 // native as % of engine
}

// Fig4 sums outgoing (request) bytes per browser by replaying both
// databases through a Fig4Analyzer.
func Fig4(db *capture.DB, browsers []string) []Fig4Row {
	a := NewFig4Analyzer(browsers)
	for _, f := range db.Engine.All() {
		a.observe(f, capture.OriginEngine)
	}
	for _, f := range db.Native.All() {
		a.observe(f, capture.OriginNative)
	}
	return a.Rows()
}

// TransportRow is one browser's per-transport flow coverage: how much
// of its captured traffic rode each data-plane protocol, and therefore
// what an h1-only interception plane would have missed.
type TransportRow struct {
	Browser string `json:"browser"`
	H1      int    `json:"h1"`
	H2      int    `json:"h2"`
	WS      int    `json:"ws"`
	DoH     int    `json:"doh"`
	Total   int    `json:"total"`
}

// TransportCoverage counts flows per browser and transport by replaying
// both databases through a TransportAnalyzer.
func TransportCoverage(db *capture.DB, browsers []string) []TransportRow {
	a := NewTransportAnalyzer(browsers)
	for _, f := range db.Engine.All() {
		a.observe(f)
	}
	for _, f := range db.Native.All() {
		a.observe(f)
	}
	return a.Rows()
}

// Fig5Series is one browser's idle timeline (Figure 5).
type Fig5Series struct {
	Browser    string
	BinSeconds int
	// Cumulative[i] is the number of native requests by the end of bin i.
	Cumulative []int
	// DestShares maps registrable destination domains to their share of
	// the idle requests.
	DestShares map[string]float64
	Total      int
}

// Fig5 bins a browser's idle flows into a cumulative timeline.
func Fig5(browser string, flows []*capture.Flow, start time.Time, duration time.Duration, binSeconds int) Fig5Series {
	if binSeconds <= 0 {
		binSeconds = 10
	}
	nBins := int(duration.Seconds()) / binSeconds
	if nBins <= 0 {
		nBins = 1
	}
	counts := make([]int, nBins)
	dests := map[string]int{}
	total := 0
	for _, f := range flows {
		off := int(f.Time.Sub(start).Seconds()) / binSeconds
		if off < 0 {
			continue
		}
		if off >= nBins {
			off = nBins - 1
		}
		counts[off]++
		dests[hostlist.RegistrableDomain(f.Host)]++
		total++
	}
	cum := make([]int, nBins)
	running := 0
	for i, c := range counts {
		running += c
		cum[i] = running
	}
	shares := make(map[string]float64, len(dests))
	for d, c := range dests {
		if total > 0 {
			shares[d] = 100 * float64(c) / float64(total)
		}
	}
	return Fig5Series{Browser: browser, BinSeconds: binSeconds, Cumulative: cum, DestShares: shares, Total: total}
}

// LinearityScore measures how linear a cumulative curve is: 1.0 means
// perfectly linear growth (Opera's news feed); lower values indicate the
// burst-then-plateau shape. It compares the first-half growth share
// against the 0.5 of a straight line.
func (s Fig5Series) LinearityScore() float64 {
	n := len(s.Cumulative)
	if n == 0 || s.Cumulative[n-1] == 0 {
		return 0
	}
	half := s.Cumulative[n/2]
	frac := float64(half) / float64(s.Cumulative[n-1])
	// frac 0.5 → perfectly linear → score 1; frac 1.0 → all growth early
	// → score 0.
	score := 1 - (frac-0.5)/0.5
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return score
}

// Table2 builds the PII matrix from the native store.
func Table2(native *capture.Store, browsers []string) (pii.Matrix, []pii.Finding) {
	return pii.BuildMatrix(native, browsers)
}

// HistoryLeaks runs the §3.2 detector.
func HistoryLeaks(native *capture.Store) []leak.Finding {
	return leak.NewDetector().Scan(native)
}

// HistoryLeaksWithInjected combines native-side leaks (all browsers)
// with engine-side leaks attributable to injected page scripts (UC
// International). Engine traffic also carries the visited websites' own
// third-party tracking (analytics beacons legitimately receive the page
// URL) — §3.2's explicit non-goal — so engine findings are filtered
// differentially: a destination that also receives the same leak from a
// non-injecting browser's engine is website-caused and dropped; a
// destination unique to the injecting browser is the injection's beacon.
// Without any non-injecting browser in the dataset the baseline is empty
// and every engine finding for the injected browsers is kept.
func HistoryLeaksWithInjected(db *capture.DB, injected []string) []leak.Finding {
	if len(injected) == 0 {
		return HistoryLeaks(db.Native)
	}
	return CombineInjectedLeaks(HistoryLeaks(db.Native), HistoryLeaks(db.Engine), injected)
}

// CombineInjectedLeaks implements the differential filter over
// already-computed native and engine finding sets, so the streaming
// path (which holds both sets incrementally) shares the exact logic
// with the batch wrapper above.
func CombineInjectedLeaks(native, engine []leak.Finding, injected []string) []leak.Finding {
	out := native
	if len(injected) == 0 {
		return out
	}
	injectedSet := make(map[string]bool, len(injected))
	for _, b := range injected {
		injectedSet[b] = true
	}
	baseline := map[string]bool{}
	haveBaseline := false
	for _, f := range engine {
		if !injectedSet[f.Browser] {
			baseline[f.Host] = true
			haveBaseline = true
		}
	}
	for _, f := range engine {
		if injectedSet[f.Browser] && (!haveBaseline || !baseline[f.Host]) {
			out = append(out, f)
		}
	}
	return out
}

// GeoRow maps one leak destination to its hosting country (§3.4).
type GeoRow struct {
	Browser string
	Host    string
	IP      string
	Country string
	InEU    bool
	Kind    leak.Kind
}

// HostResolver resolves a hostname to an address; the virtual internet
// implements it.
type HostResolver interface {
	LookupHost(host string) (net.IP, error)
}

// GeoTransfers geolocates every distinct (browser, destination) pair in
// the leak findings.
func GeoTransfers(findings []leak.Finding, resolver HostResolver, geo *geoip.DB) ([]GeoRow, error) {
	seen := map[string]bool{}
	var rows []GeoRow
	for _, f := range findings {
		key := f.Browser + "|" + f.Host + "|" + string(f.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		ip, err := resolver.LookupHost(f.Host)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolve %s: %w", f.Host, err)
		}
		country, _ := geo.Lookup(ip)
		inEU, _ := geo.InEU(ip)
		rows = append(rows, GeoRow{
			Browser: f.Browser, Host: f.Host, IP: ip.String(),
			Country: country, InEU: inEU, Kind: f.Kind,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Browser != rows[j].Browser {
			return rows[i].Browser < rows[j].Browser
		}
		return rows[i].Host < rows[j].Host
	})
	return rows, nil
}

// DNSUsage classifies each browser's resolver path from the captured
// native flows ("doh-cloudflare", "doh-google" or "local") by
// replaying the store through a DNSAnalyzer.
func DNSUsage(native *capture.Store, browsers []string) map[string]string {
	a := NewDNSAnalyzer(browsers)
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.Usage()
}

// Listing1 finds a captured Opera OLeads ad request (the paper's
// Listing 1) and returns its body, or "" when absent.
func Listing1(native *capture.Store) (body string, query string) {
	a := NewListing1Analyzer()
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.Result()
}

// UIDOnlySplit is the ablation for the taint mechanism: classify flows
// by UID alone, as a naive tool would. Every flow from a browser UID
// collapses into one bucket, so the engine/native distinction — the
// entire basis of Figures 2–4 — is lost. It returns per-browser totals.
func UIDOnlySplit(db *capture.DB, browsers []string) map[string]int {
	out := make(map[string]int, len(browsers))
	for _, b := range browsers {
		out[b] = len(db.Engine.ByBrowser(b)) + len(db.Native.ByBrowser(b))
	}
	return out
}

// VolumeCheck is one row of the kernel-vs-proxy byte cross-check.
type VolumeCheck struct {
	Browser       string
	UID           int
	ProxyReqBytes int64 // HTTP-level request bytes the proxy observed
	KernelTxBytes int64 // eBPF per-UID egress bytes (TLS overhead included)
	Consistent    bool
}

// CrossCheckVolumes validates Figure 4's proxy-side byte accounting
// against the device's independent eBPF per-UID counters (the Android
// netd-style egress maps). The kernel sees ciphertext — TLS records,
// handshakes, DoH — so its per-UID egress must be at least the HTTP
// request bytes the proxy reconstructed for the same app.
func CrossCheckVolumes(db *capture.DB, acct *ebpfsim.TrafficAccounting, uidOf map[string]int) []VolumeCheck {
	a := NewFig4Analyzer(nil)
	for _, f := range db.Engine.All() {
		a.observe(f, capture.OriginEngine)
	}
	for _, f := range db.Native.All() {
		a.observe(f, capture.OriginNative)
	}
	return CrossCheckFrom(a.ReqBytesTotal, acct, uidOf)
}

// CrossCheckFrom is the source-agnostic form of CrossCheckVolumes:
// proxyBytes supplies a browser's proxy-observed request bytes (the
// streaming path passes the campaign suite's Fig4 analyzer).
func CrossCheckFrom(proxyBytes func(browser string) int64, acct *ebpfsim.TrafficAccounting, uidOf map[string]int) []VolumeCheck {
	var rows []VolumeCheck
	for browser, uid := range uidOf {
		pb := proxyBytes(browser)
		kernel := int64(acct.TxBytes.Get(fmt.Sprint(uid)))
		rows = append(rows, VolumeCheck{
			Browser: browser, UID: uid,
			ProxyReqBytes: pb, KernelTxBytes: kernel,
			Consistent: kernel >= pb,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Browser < rows[j].Browser })
	return rows
}

// TrackableID is a persistent identifier observed accompanying history
// reports — the mechanism that lets a vendor track a user across IP
// changes, VPNs, or Tor (§3.2, Yandex's uuid).
type TrackableID struct {
	Browser string
	Host    string
	Param   string
	// Values observed; a single stable value across many visits is the
	// tracking signal, multiple values indicate rotation.
	Values []string
	// Sightings counts the flows carrying the parameter.
	Sightings int
}

// TrackableIdentifiers mines the native store for long identifier-like
// query values sent repeatedly to the same endpoint, and reports them
// most-persistent first (fewest distinct values over most sightings),
// by replaying the store through a TrackableAnalyzer.
func TrackableIdentifiers(native *capture.Store) []TrackableID {
	a := NewTrackableAnalyzer()
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.IDs()
}

// SensitiveRow is one browser × category cell of the sensitive-content
// leak breakdown (§3.2's "reporting visits to sensitive content").
type SensitiveRow struct {
	Browser  string
	Category string // websim category name
	Visits   int    // sensitive visits observed for this browser+category
	Leaked   int    // of those, visits whose full URL left the device
}

// CategoryOf maps a visited URL to its site category; the websim
// dataset supplies it.
type CategoryOf func(visitURL string) string

// SensitiveBreakdown cross-tabulates full-URL leaks per browser and
// sensitive category. A browser that does no local filtering shows
// Leaked == Visits on every row — the paper's finding for Yandex, QQ and
// UC International.
func SensitiveBreakdown(findings []leak.Finding, visits []string, browserOf map[string]bool, catOf CategoryOf) []SensitiveRow {
	type key struct{ browser, cat string }
	visitCount := map[string]int{}
	for _, v := range visits {
		visitCount[catOf(v)]++
	}
	leaked := map[key]map[string]bool{} // distinct visit URLs leaked
	for _, f := range findings {
		if f.Kind != leak.KindFullURL {
			continue
		}
		cat := catOf(f.VisitURL)
		if cat == "" {
			continue
		}
		k := key{f.Browser, cat}
		if leaked[k] == nil {
			leaked[k] = map[string]bool{}
		}
		leaked[k][f.VisitURL] = true
	}
	var rows []SensitiveRow
	for browser := range browserOf {
		for cat, n := range visitCount {
			if cat == "" {
				continue
			}
			rows = append(rows, SensitiveRow{
				Browser: browser, Category: cat,
				Visits: n, Leaked: len(leaked[key{browser, cat}]),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Browser != rows[j].Browser {
			return rows[i].Browser < rows[j].Browser
		}
		return rows[i].Category < rows[j].Category
	})
	return rows
}
