// Package vclock provides a deterministic virtual clock.
//
// All time-driven behaviour in the Panoptes simulation — browser telemetry
// schedulers, page-load timeouts, the ten-minute idle experiment — runs on a
// Clock instead of the wall clock. Advancing the clock fires due timers
// synchronously, in timestamp order, which makes long experiments run in
// milliseconds and makes every run reproducible.
package vclock

import (
	"container/heap"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Epoch is the instant at which every new Clock starts. The value is
// arbitrary but fixed so that captured flows carry stable timestamps.
var Epoch = time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)

// Clock is a deterministic virtual clock. The zero value is not usable;
// construct one with New.
//
// Timer callbacks run synchronously on the goroutine that advances the
// clock. A callback may schedule further timers (including at the current
// instant) and may perform blocking work such as in-memory network I/O;
// the clock does not advance while a callback runs.
//
// Advance and AdvanceTo may be called from multiple goroutines: advances
// are serialized, each one running to completion (all due timers fired)
// before the next begins. A timer callback advancing its own clock still
// panics — with serialization alone that mistake would deadlock instead
// of failing loudly.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64 // tie-break for timers scheduled at the same instant

	advMu   sync.Mutex   // serializes cross-goroutine advances
	advGoID atomic.Int64 // goroutine running the current advance; 0 when idle
}

// New returns a Clock set to Epoch.
func New() *Clock {
	return &Clock{now: Epoch}
}

// NewAt returns a Clock set to the given instant.
func NewAt(t time.Time) *Clock {
	return &Clock{now: t}
}

// Now returns the current virtual instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Timer is a handle to a scheduled callback. It is returned by AfterFunc
// and At.
type Timer struct {
	clock   *Clock
	when    time.Time
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index; -1 when not in the heap
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	heap.Remove(&t.clock.timers, t.index)
	return true
}

// When returns the instant at which the timer is (or was) due.
func (t *Timer) When() time.Time { return t.when }

// AfterFunc schedules fn to run when the clock has advanced by d.
// A non-positive d schedules fn at the current instant; it still only runs
// on the next Advance (or Fire) call, never inline.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scheduleLocked(c.now.Add(d), fn)
}

// At schedules fn to run at the given instant. Instants in the past are
// treated as the current instant.
func (c *Clock) At(when time.Time, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if when.Before(c.now) {
		when = c.now
	}
	return c.scheduleLocked(when, fn)
}

func (c *Clock) scheduleLocked(when time.Time, fn func()) *Timer {
	if fn == nil {
		panic("vclock: AfterFunc with nil function")
	}
	c.seq++
	t := &Timer{clock: c, when: when, seq: c.seq, fn: fn, index: -1}
	heap.Push(&c.timers, t)
	return t
}

// Ticker repeatedly reschedules a callback at a fixed period until stopped.
type Ticker struct {
	mu      sync.Mutex
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

// Tick schedules fn to run every period of virtual time, first at
// now+period. It panics if period is not positive.
func (c *Clock) Tick(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("vclock: non-positive tick period %v", period))
	}
	tk := &Ticker{clock: c, period: period, fn: fn}
	tk.arm()
	return tk
}

func (tk *Ticker) arm() {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if tk.stopped {
		return
	}
	tk.timer = tk.clock.AfterFunc(tk.period, func() {
		tk.fn()
		tk.arm()
	})
}

// Stop cancels the ticker. It is safe to call more than once.
func (tk *Ticker) Stop() {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	tk.stopped = true
	if tk.timer != nil {
		tk.timer.Stop()
	}
}

// Advance moves the clock forward by d, firing every timer due in the
// window in timestamp order (FIFO among equal timestamps). Callbacks run
// synchronously; timers they schedule inside the window also fire.
// Advance panics on negative d and on reentrant use. Concurrent Advance
// calls serialize and compose: the deltas accumulate, each advance
// starting from wherever the previous one ended.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	defer c.beginAdvance()()
	// The target is computed under the advance lock so that relative
	// advances from different goroutines never collapse onto the same
	// instant.
	c.advanceLoop(c.Now().Add(d))
}

// AdvanceTo moves the clock forward to the given instant, firing due
// timers. Instants not after the current time fire only timers due at or
// before them without moving the clock backwards. Concurrent calls are
// serialized; a later-started advance with an earlier target is then a
// no-op, which keeps time monotonic.
func (c *Clock) AdvanceTo(target time.Time) {
	defer c.beginAdvance()()
	c.advanceLoop(target)
}

// beginAdvance takes the advance lock for the calling goroutine, first
// panicking if that goroutine is already mid-advance (a timer callback
// advancing its own clock). It returns the matching release func.
func (c *Clock) beginAdvance() func() {
	gid := goid()
	if c.advGoID.Load() == gid {
		panic("vclock: reentrant Advance (a timer callback advanced the clock)")
	}
	c.advMu.Lock()
	c.advGoID.Store(gid)
	return func() {
		c.advGoID.Store(0)
		c.advMu.Unlock()
	}
}

// advanceLoop fires timers up to target and moves the clock there.
// Callers hold the advance lock.
func (c *Clock) advanceLoop(target time.Time) {
	for {
		c.mu.Lock()
		if len(c.timers) == 0 || c.timers[0].when.After(target) {
			if target.After(c.now) {
				c.now = target
			}
			c.mu.Unlock()
			return
		}
		t := heap.Pop(&c.timers).(*Timer)
		if t.when.After(c.now) {
			c.now = t.when
		}
		c.mu.Unlock()
		if !t.stopped {
			t.fn()
		}
	}
}

// Fire runs every timer due at the current instant without advancing the
// clock. It returns the number of callbacks that ran.
func (c *Clock) Fire() int {
	n := 0
	for {
		c.mu.Lock()
		if len(c.timers) == 0 || c.timers[0].when.After(c.now) {
			c.mu.Unlock()
			return n
		}
		t := heap.Pop(&c.timers).(*Timer)
		c.mu.Unlock()
		if !t.stopped {
			t.fn()
			n++
		}
	}
}

// Pending returns the number of timers currently scheduled.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// NextDeadline returns the due instant of the earliest pending timer and
// whether one exists.
func (c *Clock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) == 0 {
		return time.Time{}, false
	}
	return c.timers[0].when, true
}

// Drain advances the clock until no timers remain or until limit callbacks
// have fired, whichever comes first. It returns the number of callbacks
// fired. Drain is the idle-experiment driver: with periodic tickers
// running, use Advance with an explicit horizon instead.
func (c *Clock) Drain(limit int) int {
	fired := 0
	for fired < limit {
		deadline, ok := c.NextDeadline()
		if !ok {
			return fired
		}
		c.AdvanceTo(deadline)
		fired++
		// AdvanceTo may have fired several timers at the same instant;
		// counting each loop iteration as one keeps the bound conservative
		// but the loop terminates regardless because timers only drain.
	}
	return fired
}

// goid returns the calling goroutine's ID, parsed from the stack header
// ("goroutine N [running]:"). It is how AdvanceTo tells a reentrant
// advance (same goroutine, inside a timer callback — a bug to panic on)
// apart from a concurrent one (different goroutine — serialized and
// legal). The parse costs a few hundred nanoseconds, negligible against
// the per-visit cadence at which the clock is advanced.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return -1
}

// timerHeap is a min-heap ordered by (when, seq).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
