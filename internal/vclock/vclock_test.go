package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNowStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestNewAt(t *testing.T) {
	at := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewAt(at)
	if !c.Now().Equal(at) {
		t.Fatalf("Now() = %v, want %v", c.Now(), at)
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	if got := c.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 3s", got)
	}
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	c := New()
	var firedAt time.Time
	c.AfterFunc(5*time.Second, func() { firedAt = c.Now() })
	c.Advance(4 * time.Second)
	if !firedAt.IsZero() {
		t.Fatal("timer fired early")
	}
	c.Advance(time.Second)
	if want := Epoch.Add(5 * time.Second); !firedAt.Equal(want) {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
}

func TestAfterFuncNonPositiveDelayFiresOnNextAdvance(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(0, func() { fired = true })
	if fired {
		t.Fatal("fired inline")
	}
	c.Advance(0)
	if !fired {
		t.Fatal("did not fire on zero advance")
	}
}

func TestTimersFireInOrder(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestStopPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	c := New()
	tm := c.AfterFunc(time.Second, func() {})
	c.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestCallbackSchedulesWithinWindow(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.AfterFunc(time.Second, func() {
		fired = append(fired, c.Since(Epoch))
		c.AfterFunc(time.Second, func() {
			fired = append(fired, c.Since(Epoch))
		})
	})
	c.Advance(5 * time.Second)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v, want [1s 2s]", fired)
	}
	if got := c.Since(Epoch); got != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", got)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	c := New()
	n := 0
	tk := c.Tick(time.Minute, func() { n++ })
	c.Advance(10 * time.Minute)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	tk.Stop()
	c.Advance(10 * time.Minute)
	if n != 10 {
		t.Fatalf("ticks after Stop = %d, want 10", n)
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	c := New()
	tk := c.Tick(time.Second, func() {})
	tk.Stop()
	tk.Stop()
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending = %d after ticker stop, want 0", got)
	}
}

func TestTickPanicsOnNonPositivePeriod(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	c.Tick(0, func() {})
}

func TestAtClampsPast(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	fired := false
	c.At(Epoch, func() { fired = true })
	c.Fire()
	if !fired {
		t.Fatal("past-deadline timer did not fire at current instant")
	}
	if got := c.Since(Epoch); got != time.Hour {
		t.Fatalf("clock moved to %v", got)
	}
}

func TestAdvanceToBackwardsIsNoop(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.AdvanceTo(Epoch)
	if got := c.Since(Epoch); got != time.Hour {
		t.Fatalf("clock moved backwards to %v", got)
	}
}

func TestPendingAndNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline ok on empty clock")
	}
	c.AfterFunc(2*time.Second, func() {})
	c.AfterFunc(1*time.Second, func() {})
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	dl, ok := c.NextDeadline()
	if !ok || !dl.Equal(Epoch.Add(time.Second)) {
		t.Fatalf("NextDeadline = %v %v", dl, ok)
	}
}

func TestDrainRunsAllTimers(t *testing.T) {
	c := New()
	n := 0
	for i := 1; i <= 5; i++ {
		c.AfterFunc(time.Duration(i)*time.Second, func() { n++ })
	}
	c.Drain(100)
	if n != 5 {
		t.Fatalf("drained %d, want 5", n)
	}
}

func TestDrainRespectsLimit(t *testing.T) {
	c := New()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		c.AfterFunc(time.Second, reschedule)
	}
	c.AfterFunc(time.Second, reschedule)
	c.Drain(7)
	if n != 7 {
		t.Fatalf("drained %d, want 7", n)
	}
}

func TestReentrantAdvancePanics(t *testing.T) {
	c := New()
	c.AfterFunc(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on reentrant Advance")
			}
		}()
		c.Advance(time.Second)
	})
	c.Advance(2 * time.Second)
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	c.Advance(-time.Second)
}

func TestConcurrentScheduling(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	var mu sync.Mutex
	n := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AfterFunc(time.Second, func() {
				mu.Lock()
				n++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	c.Advance(time.Second)
	if n != 50 {
		t.Fatalf("fired %d, want 50", n)
	}
}

// Property: for any set of non-negative delays, advancing past the maximum
// fires every timer exactly once, in non-decreasing deadline order.
func TestPropertyAllTimersFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New()
		var fired []time.Time
		var max time.Duration
		for _, d := range delays {
			dur := time.Duration(d) * time.Millisecond
			if dur > max {
				max = dur
			}
			c.AfterFunc(dur, func() { fired = append(fired, c.Now()) })
		}
		c.Advance(max + time.Second)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: clock time after a sequence of advances equals the sum.
func TestPropertyAdvanceAccumulates(t *testing.T) {
	f := func(steps []uint16) bool {
		c := New()
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			total += d
			c.Advance(d)
		}
		return c.Since(Epoch) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerWhen(t *testing.T) {
	c := New()
	tm := c.AfterFunc(90*time.Second, func() {})
	if want := Epoch.Add(90 * time.Second); !tm.When().Equal(want) {
		t.Fatalf("When = %v, want %v", tm.When(), want)
	}
}

func TestConcurrentAdvances(t *testing.T) {
	// Many goroutines advancing the same clock must serialize: every due
	// timer fires exactly once and the clock lands on the furthest target.
	c := New()
	const ticks = 200
	var fired atomic.Int64
	tk := c.Tick(time.Second, func() { fired.Add(1) })
	defer tk.Stop()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticks/8; i++ {
				c.Advance(time.Second)
			}
		}()
	}
	wg.Wait()

	if got := c.Since(Epoch); got != ticks*time.Second {
		t.Fatalf("clock advanced %v, want %v", got, ticks*time.Second)
	}
	if got := fired.Load(); got != ticks {
		t.Fatalf("ticker fired %d times, want %d", got, ticks)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	c := New()
	for i := 0; i < b.N; i++ {
		c.AfterFunc(time.Millisecond, func() {})
		c.Advance(time.Millisecond)
	}
}
