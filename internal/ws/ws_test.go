package ws

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"panoptes/internal/netsim"
)

// startWSServer hosts an echo WebSocket endpoint on the virtual internet
// and returns a dial function for clients.
func startWSServer(t *testing.T, handler func(*Conn)) func(addr string) (net.Conn, error) {
	t.Helper()
	inet := netsim.New()
	l, _, err := inet.ListenDomain("ws.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/devtools", func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		handler(c)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return func(addr string) (net.Conn, error) {
		return inet.Dial(context.Background(), addr)
	}
}

func echoHandler(c *Conn) {
	defer c.Close()
	for {
		op, msg, err := c.ReadMessage()
		if err != nil {
			return
		}
		if err := c.WriteMessage(op, msg); err != nil {
			return
		}
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteMessage(OpText, []byte(`{"id":1,"method":"Page.navigate"}`)); err != nil {
		t.Fatal(err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != `{"id":1,"method":"Page.navigate"}` {
		t.Fatalf("echo = %d %q", op, msg)
	}
}

func TestBinaryMessage(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 70000) // forces 64-bit length encoding
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := c.WriteMessage(OpBinary, payload); err != nil {
		t.Fatal(err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || len(msg) != len(payload) {
		t.Fatalf("echo len = %d", len(msg))
	}
	for i := range msg {
		if msg[i] != payload[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestMediumMessage(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, _ := Dial("ws://ws.example/devtools", dial)
	defer c.Close()
	payload := []byte(strings.Repeat("m", 300)) // 16-bit length encoding
	c.WriteMessage(OpText, payload)
	_, msg, err := c.ReadMessage()
	if err != nil || string(msg) != string(payload) {
		t.Fatalf("echo = %q, %v", msg, err)
	}
}

func TestServerInitiatedMessages(t *testing.T) {
	dial := startWSServer(t, func(c *Conn) {
		defer c.Close()
		for i := 0; i < 3; i++ {
			if err := c.WriteMessage(OpText, []byte("event")); err != nil {
				return
			}
		}
	})
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		_, msg, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(msg) != "event" {
			t.Fatalf("msg = %q", msg)
		}
	}
	if _, _, err := c.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close err = %v", err)
	}
}

func TestCloseHandshake(t *testing.T) {
	done := make(chan error, 1)
	dial := startWSServer(t, func(c *Conn) {
		_, _, err := c.ReadMessage()
		done <- err
	})
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("server saw %v", err)
	}
	if err := c.WriteMessage(OpText, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
}

func TestWriteMessageRejectsControlOpcodes(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, _ := Dial("ws://ws.example/devtools", dial)
	defer c.Close()
	if err := c.WriteMessage(OpClose, nil); err == nil {
		t.Fatal("control opcode accepted")
	}
}

func TestDialRejectsBadScheme(t *testing.T) {
	if _, err := Dial("http://x/", nil); err == nil {
		t.Fatal("http scheme accepted")
	}
	if _, err := Dial("://", nil); err == nil {
		t.Fatal("garbage URL accepted")
	}
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	inet := netsim.New()
	l, _, err := inet.ListenDomain("ws.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/devtools", func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); !errors.Is(err, ErrBadHandshake) {
			t.Errorf("Upgrade err = %v", err)
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		},
	}}
	resp, err := client.Get("http://ws.example/devtools")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestConcurrentWriters(t *testing.T) {
	var mu sync.Mutex
	received := map[string]int{}
	dial := startWSServer(t, func(c *Conn) {
		defer c.Close()
		for {
			_, msg, err := c.ReadMessage()
			if err != nil {
				return
			}
			mu.Lock()
			received[string(msg)]++
			mu.Unlock()
			if err := c.WriteMessage(OpText, msg); err != nil {
				return
			}
		}
	})
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.WriteMessage(OpText, []byte(strings.Repeat("z", i+1)))
		}(i)
	}
	for i := 0; i < n; i++ {
		if _, _, err := c.ReadMessage(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	wg.Wait()
	mu.Lock()
	total := 0
	for _, v := range received {
		total += v
	}
	mu.Unlock()
	if total != n {
		t.Fatalf("server received %d messages, want %d", total, n)
	}
}

// Property: arbitrary payloads survive the masked round trip.
func TestPropertyEchoPreservesPayload(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := func(payload []byte) bool {
		if err := c.WriteMessage(OpBinary, payload); err != nil {
			return false
		}
		_, msg, err := c.ReadMessage()
		if err != nil {
			return false
		}
		if len(msg) != len(payload) {
			return false
		}
		for i := range msg {
			if msg[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// RFC 6455 §1.3 example.
	if got := acceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("acceptKey = %q", got)
	}
}

func TestFragmentedMessageReassembled(t *testing.T) {
	dial := startWSServer(t, echoHandler)
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFragmented(OpText, []byte("hello "), []byte("fragmented "), []byte("world")); err != nil {
		t.Fatal(err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(msg) != "hello fragmented world" {
		t.Fatalf("echo = %d %q", op, msg)
	}
	// Single-chunk and empty variants.
	if err := c.WriteFragmented(OpBinary, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, msg, _ := c.ReadMessage(); string(msg) != "x" {
		t.Fatalf("msg = %q", msg)
	}
	if err := c.WriteFragmented(OpClose, []byte("x")); err == nil {
		t.Fatal("control fragmentation accepted")
	}
}

func TestPingPong(t *testing.T) {
	serverGotPong := make(chan bool, 1)
	dial := startWSServer(t, func(c *Conn) {
		defer c.Close()
		// Ping the client, then read: the client's ReadMessage answers
		// with a pong, which our readFrame loop consumes silently; the
		// data message that follows proves the connection stayed healthy.
		if err := c.Ping([]byte("keepalive")); err != nil {
			return
		}
		_, msg, err := c.ReadMessage()
		serverGotPong <- err == nil && string(msg) == "after-ping"
	})
	c, err := Dial("ws://ws.example/devtools", dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Reading triggers the transparent pong; no data yet, so read in a
	// goroutine and send the follow-up message.
	done := make(chan struct{})
	go func() {
		c.ReadMessage() // blocks until server closes; consumes the ping
		close(done)
	}()
	if err := c.WriteMessage(OpText, []byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	if ok := <-serverGotPong; !ok {
		t.Fatal("server did not survive ping round trip")
	}
	<-done
	if err := c.Ping(make([]byte, 126)); err == nil {
		t.Fatal("oversized ping accepted")
	}
}
