package ws

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"testing"

	"panoptes/internal/netsim"
)

// rawPair returns two already-established Conn endpoints over a buffered
// in-memory transport, skipping the HTTP handshake to focus the tests on
// the framing layer itself.
func rawPair() (client, server *Conn) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 50000)
	b := netsim.TCPAddr(net.IPv4(203, 0, 113, 7), 80)
	cc, sc := netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})
	return newConn(cc, nil, true), newConn(sc, nil, false)
}

func TestFragmentedMaskedRoundTrip(t *testing.T) {
	client, server := rawPair()
	defer client.Close()

	// Client → server: masked frames split across continuations,
	// including an empty middle chunk.
	chunks := [][]byte{
		[]byte(`{"event":"visit","url":"https`),
		{},
		[]byte(`://news.ycombinator.com/"}`),
	}
	want := bytes.Join(chunks, nil)
	if err := client.WriteFragmented(OpText, chunks...); err != nil {
		t.Fatalf("WriteFragmented: %v", err)
	}
	op, got, err := server.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if op != OpText || !bytes.Equal(got, want) {
		t.Fatalf("reassembled op=%d payload=%q, want op=%d %q", op, got, OpText, want)
	}

	// Server → client: unmasked fragmented binary.
	binChunks := [][]byte{bytes.Repeat([]byte{0xAB}, 100), bytes.Repeat([]byte{0xCD}, 200)}
	if err := server.WriteFragmented(OpBinary, binChunks...); err != nil {
		t.Fatalf("server WriteFragmented: %v", err)
	}
	op, got, err = client.ReadMessage()
	if err != nil {
		t.Fatalf("client ReadMessage: %v", err)
	}
	if op != OpBinary || len(got) != 300 {
		t.Fatalf("server→client: op=%d len=%d", op, len(got))
	}
}

func TestLengthEncodingBoundaries(t *testing.T) {
	// 125 is the last 7-bit length, 126 the first 16-bit extended form,
	// 0xFFFF the last, 0x10000 the first 64-bit extended form.
	for _, size := range []int{0, 1, 125, 126, 127, 0xFFFF, 0x10000, 0x10000 + 1} {
		client, server := rawPair()
		payload := bytes.Repeat([]byte{byte(size)}, size)
		if err := client.WriteMessage(OpBinary, payload); err != nil {
			t.Fatalf("size %d: write: %v", size, err)
		}
		op, got, err := server.ReadMessage()
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if op != OpBinary || !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip mismatch (got %d bytes)", size, len(got))
		}
		// And the reverse (unmasked) direction.
		if err := server.WriteMessage(OpBinary, payload); err != nil {
			t.Fatalf("size %d: server write: %v", size, err)
		}
		if _, got, err = client.ReadMessage(); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("size %d: server→client mismatch (err=%v)", size, err)
		}
		client.Close()
	}
}

func TestClientFramesAreMaskedOnWire(t *testing.T) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 50001)
	b := netsim.TCPAddr(net.IPv4(203, 0, 113, 7), 80)
	cc, sc := netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})
	client := newConn(cc, nil, true)
	defer client.Close()

	payload := []byte("uid=42&session=abcdef")
	if err := client.WriteMessage(OpText, payload); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Read the raw frame from the server side and check the wire image:
	// mask bit set, payload XOR-transformed, unmasking recovers it.
	var hdr [2]byte
	if _, err := io.ReadFull(sc, hdr[:]); err != nil {
		t.Fatalf("read header: %v", err)
	}
	if hdr[0] != 0x80|byte(OpText) {
		t.Fatalf("first byte %#x, want FIN|text", hdr[0])
	}
	if hdr[1]&0x80 == 0 {
		t.Fatal("client frame missing mask bit")
	}
	if got := int(hdr[1] & 0x7F); got != len(payload) {
		t.Fatalf("wire length %d, want %d", got, len(payload))
	}
	var mask [4]byte
	if _, err := io.ReadFull(sc, mask[:]); err != nil {
		t.Fatalf("read mask: %v", err)
	}
	wire := make([]byte, len(payload))
	if _, err := io.ReadFull(sc, wire); err != nil {
		t.Fatalf("read payload: %v", err)
	}
	if bytes.Equal(wire, payload) {
		t.Fatal("payload travelled unmasked (mask key would have to be zero)")
	}
	for i := range wire {
		wire[i] ^= mask[i%4]
	}
	if !bytes.Equal(wire, payload) {
		t.Fatalf("unmasked wire payload %q, want %q", wire, payload)
	}
}

func TestSixteenBitLengthWireForm(t *testing.T) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 50004)
	b := netsim.TCPAddr(net.IPv4(203, 0, 113, 7), 80)
	cc, sc := netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})
	server := newConn(sc, nil, false)

	payload := bytes.Repeat([]byte{0x5A}, 300)
	if err := server.WriteMessage(OpBinary, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(cc, hdr[:]); err != nil {
		t.Fatalf("read header: %v", err)
	}
	if hdr[1] != 126 {
		t.Fatalf("length marker %d, want 126 (16-bit extended)", hdr[1])
	}
	if got := binary.BigEndian.Uint16(hdr[2:]); got != 300 {
		t.Fatalf("extended length %d, want 300", got)
	}
}

func TestAcceptHandshake(t *testing.T) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 50002)
	b := netsim.TCPAddr(net.IPv4(203, 0, 113, 7), 80)
	cc, sc := netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})

	// Server side: parse the upgrade request off the raw conn, then
	// Accept — exactly the shape of the proxy's intercepted-WS path.
	done := make(chan error, 1)
	go func() {
		br := bufio.NewReader(sc)
		req, err := http.ReadRequest(br)
		if err != nil {
			done <- err
			return
		}
		if !IsUpgradeRequest(req) {
			done <- ErrBadHandshake
			return
		}
		conn, err := Accept(sc, br, req)
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		op, msg, err := conn.ReadMessage()
		if err != nil {
			done <- err
			return
		}
		done <- conn.WriteMessage(op, msg)
	}()

	c, err := Dial("ws://push.example/telemetry", func(addr string) (net.Conn, error) {
		if addr != "push.example:80" {
			t.Errorf("dial addr %q", addr)
		}
		return cc, nil
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.WriteMessage(OpText, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	op, msg, err := c.ReadMessage()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if op != OpText || string(msg) != "hello" {
		t.Fatalf("echo: op=%d msg=%q", op, msg)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestAcceptRejectsNonUpgrade(t *testing.T) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 50003)
	b := netsim.TCPAddr(net.IPv4(203, 0, 113, 7), 80)
	_, sc := netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})
	req, _ := http.NewRequest("GET", "http://push.example/", nil)
	if _, err := Accept(sc, nil, req); err == nil {
		t.Fatal("expected handshake error")
	}
}

func TestWssDialDefaultPort(t *testing.T) {
	called := ""
	_, err := Dial("wss://push.example/telemetry", func(addr string) (net.Conn, error) {
		called = addr
		return nil, io.ErrClosedPipe
	})
	if err == nil {
		t.Fatal("expected dial error")
	}
	if called != "push.example:443" {
		t.Fatalf("wss dial addr %q, want push.example:443", called)
	}
}
