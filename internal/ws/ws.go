// Package ws is a minimal RFC 6455 WebSocket implementation (client and
// server) over arbitrary net.Conn transports. It exists as the CDP
// transport: browser emulators expose a DevTools WebSocket endpoint and
// the Panoptes host connects to it, exactly as the real framework speaks
// to Chrome's remote-debugging port.
//
// Supported: the opening handshake, text/binary messages, fragmentation
// on receive, client-side masking, ping/pong, and clean close. This is a
// deliberately small subset — enough for line-rate JSON-RPC — with strict
// validation of what it does implement.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// Opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Errors.
var (
	ErrClosed        = errors.New("ws: connection closed")
	ErrBadHandshake  = errors.New("ws: bad handshake")
	ErrProtocol      = errors.New("ws: protocol violation")
	ErrMessageTooBig = errors.New("ws: message exceeds limit")
)

// maxMessageSize bounds a reassembled message.
const maxMessageSize = 16 << 20

const acceptGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

func acceptKey(key string) string {
	h := sha1.New()
	io.WriteString(h, key+acceptGUID)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// Conn is an established WebSocket connection.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client side masks its frames

	writeMu sync.Mutex
	readMu  sync.Mutex
	closed  bool
	closeMu sync.Mutex
}

func newConn(c net.Conn, br *bufio.Reader, client bool) *Conn {
	if br == nil {
		br = bufio.NewReader(c)
	}
	return &Conn{conn: c, br: br, client: client}
}

// Upgrade performs the server side of the opening handshake on an HTTP
// request and hijacks the connection.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, ErrBadHandshake
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		http.Error(w, "unsupported websocket version", http.StatusBadRequest)
		return nil, ErrBadHandshake
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, ErrBadHandshake
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return nil, fmt.Errorf("ws: response writer cannot hijack")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: write handshake response: %w", err)
	}
	return newConn(conn, brw.Reader, false), nil
}

// IsUpgradeRequest reports whether req is a WebSocket opening handshake.
// The transparent proxy uses it to route an intercepted GET to the
// upgrade path instead of the plain HTTP exchange path.
func IsUpgradeRequest(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get("Upgrade"), "websocket") &&
		headerContainsToken(r.Header.Get("Connection"), "upgrade")
}

// Accept performs the server side of the opening handshake directly over
// a net.Conn for a request the caller already parsed — the path used by
// the transparent proxy, which owns the raw (decrypted) connection and
// has no http.ResponseWriter to hijack. br, when non-nil, carries bytes
// already buffered past the request head.
func Accept(conn net.Conn, br *bufio.Reader, r *http.Request) (*Conn, error) {
	if !IsUpgradeRequest(r) {
		return nil, ErrBadHandshake
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadHandshake)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("%w: missing Sec-WebSocket-Key", ErrBadHandshake)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		return nil, fmt.Errorf("ws: write handshake response: %w", err)
	}
	return newConn(conn, br, false), nil
}

func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Dial performs the client handshake for wsURL ("ws://host/path" or
// "wss://host/path") over a connection obtained from dial. For wss the
// dial callback is responsible for returning a TLS-wrapped connection;
// this layer only picks the default port (80 vs 443).
func Dial(wsURL string, dial func(addr string) (net.Conn, error)) (*Conn, error) {
	u, err := url.Parse(wsURL)
	if err != nil {
		return nil, fmt.Errorf("ws: parse url: %w", err)
	}
	defaultPort := ""
	switch u.Scheme {
	case "ws":
		defaultPort = "80"
	case "wss":
		defaultPort = "443"
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if !strings.Contains(host, ":") {
		host += ":" + defaultPort
	}
	conn, err := dial(host)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", host, err)
	}

	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		path, u.Host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}

	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: read handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("%w: status %d", ErrBadHandshake, resp.StatusCode)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("%w: bad accept key", ErrBadHandshake)
	}
	return newConn(conn, br, true), nil
}

// WriteMessage sends a single unfragmented message.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("ws: WriteMessage with control opcode %d", op)
	}
	return c.writeFrame(op, payload, true)
}

// WriteFragmented sends one message split across the given chunks
// (initial data frame plus continuations), exercising the peer's
// reassembly path.
func (c *Conn) WriteFragmented(op Opcode, chunks ...[]byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("ws: WriteFragmented with control opcode %d", op)
	}
	if len(chunks) == 0 {
		return c.writeFrame(op, nil, true)
	}
	for i, chunk := range chunks {
		frameOp := OpContinuation
		if i == 0 {
			frameOp = op
		}
		fin := i == len(chunks)-1
		if err := c.writeFrame(frameOp, chunk, fin); err != nil {
			return err
		}
	}
	return nil
}

// Ping sends a ping control frame; the peer's ReadMessage answers with a
// pong transparently.
func (c *Conn) Ping(payload []byte) error {
	if len(payload) > 125 {
		return fmt.Errorf("ws: ping payload exceeds 125 bytes")
	}
	return c.writeFrame(OpPing, payload, true)
}

func (c *Conn) writeFrame(op Opcode, payload []byte, fin bool) error {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return ErrClosed
	}
	c.closeMu.Unlock()

	c.writeMu.Lock()
	defer c.writeMu.Unlock()

	var hdr [14]byte
	n := 0
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	hdr[0] = b0
	n = 2
	l := len(payload)
	switch {
	case l < 126:
		hdr[1] = byte(l)
	case l <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(l))
		n = 10
	}

	var body []byte
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return fmt.Errorf("ws: mask: %w", err)
		}
		copy(hdr[n:], mask[:])
		n += 4
		body = make([]byte, l)
		for i, b := range payload {
			body[i] = b ^ mask[i%4]
		}
	} else {
		body = payload
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return fmt.Errorf("ws: write frame header: %w", err)
	}
	if _, err := c.conn.Write(body); err != nil {
		return fmt.Errorf("ws: write frame body: %w", err)
	}
	return nil
}

// ReadMessage returns the next complete data message, transparently
// answering pings and reassembling fragmented messages. A received close
// frame (or EOF) yields ErrClosed.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()

	var msgOp Opcode
	var buf []byte
	for {
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			if err := c.writeFrame(OpPong, payload, true); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			c.writeFrame(OpClose, nil, true)
			c.markClosed()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if buf != nil {
				return 0, nil, fmt.Errorf("%w: new data frame inside fragmented message", ErrProtocol)
			}
			msgOp = op
			buf = payload
		case OpContinuation:
			if buf == nil {
				return 0, nil, fmt.Errorf("%w: continuation without initial frame", ErrProtocol)
			}
			buf = append(buf, payload...)
		default:
			return 0, nil, fmt.Errorf("%w: reserved opcode %d", ErrProtocol, op)
		}
		if len(buf) > maxMessageSize {
			return 0, nil, ErrMessageTooBig
		}
		if fin && buf != nil {
			return msgOp, buf, nil
		}
	}
}

func (c *Conn) readFrame() (fin bool, op Opcode, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			c.markClosed()
			return false, 0, nil, ErrClosed
		}
		return false, 0, nil, fmt.Errorf("ws: read frame header: %w", err)
	}
	fin = h[0]&0x80 != 0
	if h[0]&0x70 != 0 {
		return false, 0, nil, fmt.Errorf("%w: RSV bits set", ErrProtocol)
	}
	op = Opcode(h[0] & 0x0F)
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, fmt.Errorf("ws: read length: %w", err)
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, fmt.Errorf("ws: read length: %w", err)
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxMessageSize {
		return false, 0, nil, ErrMessageTooBig
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, fmt.Errorf("ws: read mask: %w", err)
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, fmt.Errorf("ws: read payload: %w", err)
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, op, payload, nil
}

func (c *Conn) markClosed() {
	c.closeMu.Lock()
	c.closed = true
	c.closeMu.Unlock()
}

// Close sends a close frame (best effort) and closes the transport.
func (c *Conn) Close() error {
	c.closeMu.Lock()
	already := c.closed
	c.closed = true
	c.closeMu.Unlock()
	if !already {
		c.writeMu.Lock()
		// Direct write: writeFrame would refuse now that closed is set.
		hdr := []byte{byte(OpClose) | 0x80, 0}
		if c.client {
			hdr[1] = 0x80
			hdr = append(hdr, 0, 0, 0, 0)
		}
		c.conn.Write(hdr)
		c.writeMu.Unlock()
	}
	return c.conn.Close()
}

// UnderlyingConn exposes the transport, for tests.
func (c *Conn) UnderlyingConn() net.Conn { return c.conn }
