// Package geoip provides the IP-to-country database the paper's §3.4
// analysis uses (the authors used iplocation.net). The database is built
// from the virtual internet's per-country address allocation table, so a
// lookup of any simulated server yields the country its operator "hosts"
// it in — Yandex in RU, QQ in CN, UC International in CA, and so on.
package geoip

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
)

// EU is the set of EU member states (ISO 3166-1 alpha-2, 2023 membership).
// §3.4 asks whether phone-home receivers sit inside or outside it.
var EU = map[string]bool{
	"AT": true, "BE": true, "BG": true, "HR": true, "CY": true, "CZ": true,
	"DK": true, "EE": true, "FI": true, "FR": true, "DE": true, "GR": true,
	"HU": true, "IE": true, "IT": true, "LV": true, "LT": true, "LU": true,
	"MT": true, "NL": true, "PL": true, "PT": true, "RO": true, "SK": true,
	"SI": true, "ES": true, "SE": true,
}

// Range is one database row: a CIDR block assigned to a country.
type Range struct {
	Net     *net.IPNet
	Country string
}

// DB is an immutable-after-build IP-to-country database with binary-search
// lookup over sorted IPv4 ranges.
type DB struct {
	mu     sync.RWMutex
	ranges []rangeEntry
	sorted bool
}

type rangeEntry struct {
	start, end uint32 // inclusive
	country    string
}

// New returns an empty database.
func New() *DB { return &DB{} }

// Add inserts a range. Overlapping ranges are allowed; the first match in
// start order wins.
func (db *DB) Add(n *net.IPNet, country string) error {
	ip4 := n.IP.To4()
	if ip4 == nil {
		return fmt.Errorf("geoip: only IPv4 ranges supported, got %v", n)
	}
	ones, bits := n.Mask.Size()
	if bits != 32 {
		return fmt.Errorf("geoip: bad mask in %v", n)
	}
	start := binary.BigEndian.Uint32(ip4)
	size := uint32(1) << (32 - ones)
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ranges = append(db.ranges, rangeEntry{start: start, end: start + size - 1, country: country})
	db.sorted = false
	return nil
}

// AddCIDR parses and inserts a CIDR string.
func (db *DB) AddCIDR(cidr, country string) error {
	_, n, err := net.ParseCIDR(cidr)
	if err != nil {
		return fmt.Errorf("geoip: %w", err)
	}
	return db.Add(n, country)
}

func (db *DB) sortLocked() {
	sort.Slice(db.ranges, func(i, j int) bool { return db.ranges[i].start < db.ranges[j].start })
	db.sorted = true
}

// Lookup returns the country of ip and whether it is known.
func (db *DB) Lookup(ip net.IP) (string, bool) {
	ip4 := ip.To4()
	if ip4 == nil {
		return "", false
	}
	v := binary.BigEndian.Uint32(ip4)
	db.mu.Lock()
	if !db.sorted {
		db.sortLocked()
	}
	ranges := db.ranges
	db.mu.Unlock()

	// First range with start > v, then step back.
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].start > v })
	for j := i - 1; j >= 0; j-- {
		if ranges[j].end >= v {
			return ranges[j].country, true
		}
		// Ranges are disjoint in practice; one step back suffices, but
		// keep scanning for safety with overlaps.
		if v-ranges[j].start > 1<<24 {
			break
		}
	}
	return "", false
}

// LookupString parses ip and looks it up.
func (db *DB) LookupString(ip string) (string, bool) {
	parsed := net.ParseIP(ip)
	if parsed == nil {
		return "", false
	}
	return db.Lookup(parsed)
}

// InEU reports whether ip geolocates to an EU member state. Unknown
// addresses report false for both returns.
func (db *DB) InEU(ip net.IP) (inEU bool, known bool) {
	c, ok := db.Lookup(ip)
	if !ok {
		return false, false
	}
	return EU[c], true
}

// Len returns the number of ranges loaded.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.ranges)
}

// Allocation is the subset of the netsim allocation table geoip needs;
// defined locally to avoid a dependency cycle.
type Allocation struct {
	CIDR    *net.IPNet
	Country string
}

// Build constructs a DB from an allocation table.
func Build(allocs []Allocation) (*DB, error) {
	db := New()
	for _, a := range allocs {
		if err := db.Add(a.CIDR, a.Country); err != nil {
			return nil, err
		}
	}
	return db, nil
}
