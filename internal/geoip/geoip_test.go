package geoip

import (
	"net"
	"testing"
	"testing/quick"
)

func mustCIDR(t *testing.T, s string) *net.IPNet {
	t.Helper()
	_, n, err := net.ParseCIDR(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLookupBasic(t *testing.T) {
	db := New()
	if err := db.AddCIDR("20.0.0.0/16", "RU"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddCIDR("20.1.0.0/16", "CN"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddCIDR("20.2.0.0/16", "FR"); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"20.0.0.1":     "RU",
		"20.0.255.255": "RU",
		"20.1.0.50":    "CN",
		"20.2.33.44":   "FR",
	}
	for ip, want := range cases {
		got, ok := db.LookupString(ip)
		if !ok || got != want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", ip, got, ok, want)
		}
	}
	if _, ok := db.LookupString("30.0.0.1"); ok {
		t.Error("lookup outside all ranges succeeded")
	}
}

func TestLookupBoundaries(t *testing.T) {
	db := New()
	db.AddCIDR("10.10.0.0/24", "DE")
	if c, ok := db.LookupString("10.10.0.0"); !ok || c != "DE" {
		t.Fatalf("start boundary: %q %v", c, ok)
	}
	if c, ok := db.LookupString("10.10.0.255"); !ok || c != "DE" {
		t.Fatalf("end boundary: %q %v", c, ok)
	}
	if _, ok := db.LookupString("10.10.1.0"); ok {
		t.Fatal("one past end matched")
	}
	if _, ok := db.LookupString("10.9.255.255"); ok {
		t.Fatal("one before start matched")
	}
}

func TestIPv6Unknown(t *testing.T) {
	db := New()
	db.AddCIDR("20.0.0.0/16", "US")
	if _, ok := db.Lookup(net.ParseIP("2001:db8::1")); ok {
		t.Fatal("IPv6 lookup matched an IPv4 range")
	}
}

func TestAddRejectsIPv6(t *testing.T) {
	db := New()
	if err := db.Add(mustCIDR(t, "2001:db8::/32"), "US"); err == nil {
		t.Fatal("IPv6 range accepted")
	}
}

func TestLookupStringBadInput(t *testing.T) {
	db := New()
	if _, ok := db.LookupString("not-an-ip"); ok {
		t.Fatal("garbage input matched")
	}
}

func TestInEU(t *testing.T) {
	db := New()
	db.AddCIDR("20.0.0.0/16", "GR") // Greece: EU (the paper's vantage point)
	db.AddCIDR("20.1.0.0/16", "RU")
	db.AddCIDR("20.2.0.0/16", "CA")
	for _, tc := range []struct {
		ip    string
		inEU  bool
		known bool
	}{
		{"20.0.0.1", true, true},
		{"20.1.0.1", false, true},
		{"20.2.0.1", false, true},
		{"99.0.0.1", false, false},
	} {
		in, known := db.InEU(net.ParseIP(tc.ip))
		if in != tc.inEU || known != tc.known {
			t.Errorf("InEU(%s) = %v,%v; want %v,%v", tc.ip, in, known, tc.inEU, tc.known)
		}
	}
}

func TestEUMembershipTable(t *testing.T) {
	for _, c := range []string{"DE", "FR", "GR", "ES", "SE"} {
		if !EU[c] {
			t.Errorf("%s not marked EU", c)
		}
	}
	for _, c := range []string{"RU", "CN", "CA", "US", "GB", "CH", "NO"} {
		if EU[c] {
			t.Errorf("%s wrongly marked EU", c)
		}
	}
}

func TestBuildFromAllocations(t *testing.T) {
	allocs := []Allocation{
		{CIDR: mustCIDR(t, "20.0.0.0/16"), Country: "RU"},
		{CIDR: mustCIDR(t, "20.1.0.0/16"), Country: "CN"},
	}
	db, err := Build(allocs)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if c, _ := db.LookupString("20.1.0.7"); c != "CN" {
		t.Fatalf("lookup = %q", c)
	}
}

func TestManyRangesBinarySearch(t *testing.T) {
	db := New()
	for i := 0; i < 200; i++ {
		n := &net.IPNet{IP: net.IPv4(20, byte(i), 0, 0), Mask: net.CIDRMask(16, 32)}
		country := "US"
		if i%2 == 1 {
			country = "JP"
		}
		if err := db.Add(n, country); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		want := "US"
		if i%2 == 1 {
			want = "JP"
		}
		got, ok := db.Lookup(net.IPv4(20, byte(i), 5, 5))
		if !ok || got != want {
			t.Fatalf("block %d: got %q %v", i, got, ok)
		}
	}
}

// Property: every address inside an added /24 resolves to its country,
// and the adjacent /24s do not.
func TestPropertyRangeContainment(t *testing.T) {
	f := func(b2, b3, host uint8) bool {
		db := New()
		n := &net.IPNet{IP: net.IPv4(20, b2, b3, 0), Mask: net.CIDRMask(24, 32)}
		if err := db.Add(n, "NL"); err != nil {
			return false
		}
		c, ok := db.Lookup(net.IPv4(20, b2, b3, host))
		return ok && c == "NL"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	db := New()
	for i := 0; i < 500; i++ {
		db.Add(&net.IPNet{IP: net.IPv4(20, byte(i%250), 0, 0), Mask: net.CIDRMask(16, 32)}, "US")
	}
	ip := net.IPv4(20, 100, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(ip)
	}
}
