package dnsmsg

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzUnpackPackRoundTrip pins the codec's round-trip law on arbitrary
// wire bytes: whenever Unpack accepts a message, re-encoding it and
// decoding again must reproduce the same Message. Pack may legally emit
// different bytes than the input (it compresses names the sender did
// not), so the fixed point is the decoded form, not the octets.
func FuzzUnpackPackRoundTrip(f *testing.F) {
	seed := func(m *Message) {
		b, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(NewQuery(1, "example.com", TypeA))
	seed(NewQuery(42, "cc-gr.t.whale.naver.com", TypeA))
	q := NewQuery(7, "secret-site.example", TypeAAAA)
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = append(resp.Answers, Resource{
		Name: "secret-site.example", Type: TypeCNAME, Class: ClassIN,
		TTL: 300, Name2: "edge.cdn.example",
	})
	seed(resp)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return // rejected input: only the accept set carries the law
		}
		b, err := m.Pack()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\n%+v", err, m)
		}
		m2, err := Unpack(b)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v\n%x", err, b)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip not a fixed point:\nfirst  %+v\nsecond %+v", m, m2)
		}
	})
}

// FuzzQueryNameRoundTrip pins the qname path the DoH leak analyses
// depend on: any name Pack accepts must decode back to its canonical
// form (trailing dot trimmed; the root is "."), since the PII and
// history scanners match decoded qnames verbatim.
func FuzzQueryNameRoundTrip(f *testing.F) {
	f.Add("example.com")
	f.Add("cc-gr.t.whale.naver.com")
	f.Add("a.b.c.d.e")
	f.Add(".")
	f.Add("xn--bcher-kva.example")

	f.Fuzz(func(t *testing.T, name string) {
		b, err := NewQuery(9, name, TypeA).Pack()
		if err != nil {
			return // invalid name: encoder refused it, nothing to pin
		}
		m, err := Unpack(b)
		if err != nil {
			t.Fatalf("packed query failed to decode: %v (name %q)", err, name)
		}
		if len(m.Questions) != 1 {
			t.Fatalf("questions = %d, want 1", len(m.Questions))
		}
		want := strings.TrimSuffix(name, ".")
		if want == "" {
			want = "."
		}
		if got := m.Questions[0].Name; got != want {
			t.Fatalf("qname round trip: packed %q, decoded %q, want %q", name, got, want)
		}
	})
}
