// Package dnsmsg implements the DNS wire format (RFC 1035 subset):
// message header, questions, and resource records of the types the
// simulation needs (A, AAAA, CNAME, TXT, NS, SOA), including name
// compression on decode and a correct, loop-safe decompressor.
//
// It backs both the device's local stub resolver and the DNS-over-HTTPS
// endpoints (RFC 8484 carries exactly this wire format in HTTPS bodies),
// letting Panoptes observe which browsers ship the user's visited domains
// to Cloudflare or Google instead of the local resolver.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Resource record types used by the simulation.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0
	RCodeFormat   RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImpl  RCode = 4
	RCodeRefused  RCode = 5
)

// Header is the fixed 12-byte DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a DNS question.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Resource is a decoded resource record.
type Resource struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// Exactly one of the following is meaningful, per Type.
	A     net.IP   // TypeA (4 bytes) and TypeAAAA (16 bytes)
	Name2 string   // TypeCNAME, TypeNS: target name
	TXT   []string // TypeTXT
	SOA   *SOAData // TypeSOA
	Raw   []byte   // unknown types: undecoded RDATA, preserved for re-encoding
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Message is a whole DNS message.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Resource
	Authorities []Resource
	Additionals []Resource
}

// Errors returned by the decoder.
var (
	ErrShortMessage   = errors.New("dnsmsg: message too short")
	ErrBadPointer     = errors.New("dnsmsg: bad compression pointer")
	ErrNameTooLong    = errors.New("dnsmsg: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnsmsg: label exceeds 63 octets")
	ErrTrailingData   = errors.New("dnsmsg: trailing bytes after message")
	ErrPointerLoop    = errors.New("dnsmsg: compression pointer loop")
	ErrBadRDataLength = errors.New("dnsmsg: rdata length mismatch")
	ErrDotInLabel     = errors.New("dnsmsg: label contains a dot")
)

// nameOffsets tracks where each (sub)name was first written, enabling
// RFC 1035 §4.1.4 compression pointers on encode.
type nameOffsets map[string]int

// appendCompressedName encodes a domain name, emitting a compression
// pointer for the longest previously-written suffix. Offsets beyond the
// 14-bit pointer range are written uncompressed.
func appendCompressedName(b []byte, name string, offs nameOffsets) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(b, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if off, ok := offs[suffix]; ok && off <= 0x3FFF {
			return append(b, 0xC0|byte(off>>8), byte(off)), nil
		}
		if len(labels[i]) == 0 {
			return nil, fmt.Errorf("dnsmsg: empty label in %q", name)
		}
		if len(labels[i]) > 63 {
			return nil, ErrLabelTooLong
		}
		if len(b) <= 0x3FFF {
			offs[suffix] = len(b)
		}
		b = append(b, byte(len(labels[i])))
		b = append(b, labels[i]...)
	}
	return append(b, 0), nil
}

// appendName encodes a domain name without compression (compression on
// encode is optional per RFC; we always decode it).
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(b, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 {
			return nil, fmt.Errorf("dnsmsg: empty label in %q", name)
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// readName decodes a (possibly compressed) name starting at off in msg.
// It returns the name and the offset just past the name's in-place bytes.
func readName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	ret := off
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if !jumped {
				ret = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, ret, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrShortMessage
			}
			ptr := (c&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				ret = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			off = ptr
			hops++
			if hops > 64 {
				return "", 0, ErrPointerLoop
			}
		case c&0xC0 != 0:
			return "", 0, fmt.Errorf("dnsmsg: reserved label type 0x%02x", c&0xC0)
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrShortMessage
			}
			// A dot inside a label has no unambiguous textual form: the
			// decoded name would re-encode with different label breaks.
			// Rejecting keeps decode∘encode a fixed point (fuzz-pinned).
			if strings.IndexByte(string(msg[off+1:off+1+c]), '.') >= 0 {
				return "", 0, ErrDotInLabel
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+c])
			if sb.Len() > 255 {
				return "", 0, ErrNameTooLong
			}
			off += 1 + c
		}
	}
}

// Pack serialises the message.
func (m *Message) Pack() ([]byte, error) {
	b := make([]byte, 0, 128)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode) & 0xF

	b = binary.BigEndian.AppendUint16(b, m.Header.ID)
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Authorities)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Additionals)))

	var err error
	offs := make(nameOffsets)
	for _, q := range m.Questions {
		if b, err = appendCompressedName(b, q.Name, offs); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, uint16(q.Class))
	}
	for _, sect := range [][]Resource{m.Answers, m.Authorities, m.Additionals} {
		for _, r := range sect {
			if b, err = appendResource(b, r, offs); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendResource(b []byte, r Resource, offs nameOffsets) ([]byte, error) {
	var err error
	if b, err = appendCompressedName(b, r.Name, offs); err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(r.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(r.Class))
	b = binary.BigEndian.AppendUint32(b, r.TTL)

	var rdata []byte
	switch r.Type {
	case TypeA:
		ip4 := r.A.To4()
		if ip4 == nil {
			return nil, fmt.Errorf("dnsmsg: A record with non-IPv4 address %v", r.A)
		}
		rdata = ip4
	case TypeAAAA:
		ip16 := r.A.To16()
		if ip16 == nil {
			return nil, fmt.Errorf("dnsmsg: AAAA record with bad address %v", r.A)
		}
		rdata = ip16
	case TypeCNAME, TypeNS:
		if rdata, err = appendName(nil, r.Name2); err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return nil, fmt.Errorf("dnsmsg: TXT string exceeds 255 bytes")
			}
			rdata = append(rdata, byte(len(s)))
			rdata = append(rdata, s...)
		}
	case TypeSOA:
		if r.SOA == nil {
			return nil, fmt.Errorf("dnsmsg: SOA record without data")
		}
		if rdata, err = appendName(nil, r.SOA.MName); err != nil {
			return nil, err
		}
		if rdata, err = appendName(rdata, r.SOA.RName); err != nil {
			return nil, err
		}
		rdata = binary.BigEndian.AppendUint32(rdata, r.SOA.Serial)
		rdata = binary.BigEndian.AppendUint32(rdata, r.SOA.Refresh)
		rdata = binary.BigEndian.AppendUint32(rdata, r.SOA.Retry)
		rdata = binary.BigEndian.AppendUint32(rdata, r.SOA.Expire)
		rdata = binary.BigEndian.AppendUint32(rdata, r.SOA.Minimum)
	default:
		// Unknown type: emit the preserved RDATA verbatim (nil for a
		// hand-built record, which packs as an empty-RDATA envelope).
		rdata = r.Raw
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(rdata)))
	return append(b, rdata...), nil
}

// Unpack parses a DNS message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrShortMessage
	}
	flags := binary.BigEndian.Uint16(msg[2:4])
	m := &Message{Header: Header{
		ID:                 binary.BigEndian.Uint16(msg[0:2]),
		Response:           flags&(1<<15) != 0,
		OpCode:             uint8(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}}
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(msg, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(msg) {
			return nil, ErrShortMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sect := range []*[]Resource{&m.Answers, &m.Authorities, &m.Additionals} {
		var n int
		switch sect {
		case &m.Answers:
			n = an
		case &m.Authorities:
			n = ns
		default:
			n = ar
		}
		for i := 0; i < n; i++ {
			var r Resource
			r, off, err = readResource(msg, off)
			if err != nil {
				return nil, err
			}
			*sect = append(*sect, r)
		}
	}
	if off != len(msg) {
		return nil, ErrTrailingData
	}
	return m, nil
}

func readResource(msg []byte, off int) (Resource, int, error) {
	var r Resource
	var err error
	r.Name, off, err = readName(msg, off)
	if err != nil {
		return r, 0, err
	}
	if off+10 > len(msg) {
		return r, 0, ErrShortMessage
	}
	r.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	r.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	r.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return r, 0, ErrShortMessage
	}
	end := off + rdlen

	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, ErrBadRDataLength
		}
		r.A = net.IP(append([]byte(nil), msg[off:end]...))
	case TypeAAAA:
		if rdlen != 16 {
			return r, 0, ErrBadRDataLength
		}
		r.A = net.IP(append([]byte(nil), msg[off:end]...))
	case TypeCNAME, TypeNS:
		var n int
		r.Name2, n, err = readName(msg, off)
		if err != nil {
			return r, 0, err
		}
		if n > end {
			return r, 0, ErrBadRDataLength
		}
	case TypeTXT:
		p := off
		for p < end {
			l := int(msg[p])
			p++
			if p+l > end {
				return r, 0, ErrBadRDataLength
			}
			r.TXT = append(r.TXT, string(msg[p:p+l]))
			p += l
		}
	case TypeSOA:
		soa := &SOAData{}
		p := off
		soa.MName, p, err = readName(msg, p)
		if err != nil {
			return r, 0, err
		}
		soa.RName, p, err = readName(msg, p)
		if err != nil {
			return r, 0, err
		}
		if p+20 > end {
			return r, 0, ErrBadRDataLength
		}
		soa.Serial = binary.BigEndian.Uint32(msg[p:])
		soa.Refresh = binary.BigEndian.Uint32(msg[p+4:])
		soa.Retry = binary.BigEndian.Uint32(msg[p+8:])
		soa.Expire = binary.BigEndian.Uint32(msg[p+12:])
		soa.Minimum = binary.BigEndian.Uint32(msg[p+16:])
		r.SOA = soa
	default:
		// Unknown type: keep the envelope and the raw RDATA so the
		// record survives a re-encode (fuzz-pinned round trip).
		if rdlen > 0 {
			r.Raw = append([]byte(nil), msg[off:end]...)
		}
	}
	return r, end, nil
}

// NewQuery builds a standard recursive query for name/type.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing the query's ID and
// question.
func NewResponse(q *Message, rcode RCode) *Message {
	resp := &Message{Header: Header{
		ID:                 q.Header.ID,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   q.Header.RecursionDesired,
		RecursionAvailable: true,
		RCode:              rcode,
	}}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}
