package dnsmsg

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xBEEF, "www.example.com", TypeA)
	got := roundTrip(t, q)
	if got.Header.ID != 0xBEEF || got.Header.Response || !got.Header.RecursionDesired {
		t.Fatalf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com" || got.Questions[0].Type != TypeA {
		t.Fatalf("question = %+v", got.Questions[0])
	}
}

func TestARecordRoundTrip(t *testing.T) {
	q := NewQuery(7, "a.example", TypeA)
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = append(resp.Answers, Resource{
		Name: "a.example", Type: TypeA, Class: ClassIN, TTL: 300,
		A: net.IPv4(20, 0, 1, 2),
	})
	got := roundTrip(t, resp)
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a := got.Answers[0]
	if !a.A.Equal(net.IPv4(20, 0, 1, 2)) || a.TTL != 300 || a.Type != TypeA {
		t.Fatalf("answer = %+v", a)
	}
	if !got.Header.Response || !got.Header.Authoritative {
		t.Fatalf("header = %+v", got.Header)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	ip := net.ParseIP("2001:db8::1")
	m := &Message{Header: Header{ID: 9, Response: true}}
	m.Answers = append(m.Answers, Resource{Name: "v6.example", Type: TypeAAAA, Class: ClassIN, TTL: 60, A: ip})
	got := roundTrip(t, m)
	if !got.Answers[0].A.Equal(ip) {
		t.Fatalf("AAAA = %v", got.Answers[0].A)
	}
}

func TestCNAMEAndNS(t *testing.T) {
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.Answers = append(m.Answers,
		Resource{Name: "alias.example", Type: TypeCNAME, Class: ClassIN, TTL: 10, Name2: "canonical.example"},
	)
	m.Authorities = append(m.Authorities,
		Resource{Name: "example", Type: TypeNS, Class: ClassIN, TTL: 10, Name2: "ns1.example"},
	)
	got := roundTrip(t, m)
	if got.Answers[0].Name2 != "canonical.example" {
		t.Fatalf("CNAME = %q", got.Answers[0].Name2)
	}
	if got.Authorities[0].Name2 != "ns1.example" {
		t.Fatalf("NS = %q", got.Authorities[0].Name2)
	}
}

func TestTXTRoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 2, Response: true}}
	m.Answers = append(m.Answers, Resource{
		Name: "txt.example", Type: TypeTXT, Class: ClassIN, TTL: 5,
		TXT: []string{"v=spf1 -all", "second string"},
	})
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Answers[0].TXT, []string{"v=spf1 -all", "second string"}) {
		t.Fatalf("TXT = %v", got.Answers[0].TXT)
	}
}

func TestSOARoundTrip(t *testing.T) {
	m := &Message{Header: Header{ID: 3, Response: true}}
	m.Answers = append(m.Answers, Resource{
		Name: "example", Type: TypeSOA, Class: ClassIN, TTL: 900,
		SOA: &SOAData{MName: "ns1.example", RName: "hostmaster.example",
			Serial: 2023051201, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 86400},
	})
	got := roundTrip(t, m)
	soa := got.Answers[0].SOA
	if soa == nil || soa.Serial != 2023051201 || soa.MName != "ns1.example" || soa.Minimum != 86400 {
		t.Fatalf("SOA = %+v", soa)
	}
}

func TestNXDomainResponse(t *testing.T) {
	q := NewQuery(4, "missing.example", TypeA)
	resp := NewResponse(q, RCodeNXDomain)
	got := roundTrip(t, resp)
	if got.Header.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v", got.Header.RCode)
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	q := NewQuery(5, ".", TypeNS)
	got := roundTrip(t, q)
	if got.Questions[0].Name != "." {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

func TestCompressionPointerDecoding(t *testing.T) {
	// Hand-build a message whose answer name is a pointer to the question
	// name, the classic RFC 1035 layout real servers emit.
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 0x1234) // ID
	b = binary.BigEndian.AppendUint16(b, 0x8180) // response, RD, RA
	b = binary.BigEndian.AppendUint16(b, 1)      // QD
	b = binary.BigEndian.AppendUint16(b, 1)      // AN
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	// Question: example.com A IN at offset 12.
	b = append(b, 7)
	b = append(b, "example"...)
	b = append(b, 3)
	b = append(b, "com"...)
	b = append(b, 0)
	b = binary.BigEndian.AppendUint16(b, uint16(TypeA))
	b = binary.BigEndian.AppendUint16(b, uint16(ClassIN))
	// Answer: pointer to offset 12.
	b = append(b, 0xC0, 12)
	b = binary.BigEndian.AppendUint16(b, uint16(TypeA))
	b = binary.BigEndian.AppendUint16(b, uint16(ClassIN))
	b = binary.BigEndian.AppendUint32(b, 60)
	b = binary.BigEndian.AppendUint16(b, 4)
	b = append(b, 93, 184, 216, 34)

	m, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "example.com" {
		t.Fatalf("decompressed name = %q", m.Answers[0].Name)
	}
	if !m.Answers[0].A.Equal(net.IPv4(93, 184, 216, 34)) {
		t.Fatalf("A = %v", m.Answers[0].A)
	}
}

func TestForwardPointerRejected(t *testing.T) {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, 0xC0, 200) // pointer beyond itself
	b = append(b, 0, 1, 0, 1)
	if _, err := Unpack(b); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Offset 12 points at itself via a pair of pointers.
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 2)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, 0xC0, 14) // question 1 name: pointer to offset 14
	b = append(b, 0xC0, 12) // offset 14: pointer back to 12
	b = append(b, 0, 1, 0, 1)
	if _, err := Unpack(b); err == nil {
		t.Fatal("pointer loop accepted")
	}
}

func TestTruncatedMessages(t *testing.T) {
	q := NewQuery(6, "www.example.com", TypeA)
	full, _ := q.Pack()
	for i := 0; i < len(full); i++ {
		if _, err := Unpack(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestTrailingDataRejected(t *testing.T) {
	q := NewQuery(6, "example.com", TypeA)
	b, _ := q.Pack()
	if _, err := Unpack(append(b, 0xFF)); err != ErrTrailingData {
		t.Fatalf("err = %v", err)
	}
}

func TestLabelTooLong(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example"
	q := NewQuery(1, long, TypeA)
	if _, err := q.Pack(); err != ErrLabelTooLong {
		t.Fatalf("err = %v", err)
	}
}

func TestNameTooLong(t *testing.T) {
	parts := make([]string, 40)
	for i := range parts {
		parts[i] = "abcdefgh"
	}
	q := NewQuery(1, strings.Join(parts, "."), TypeA)
	if _, err := q.Pack(); err != ErrNameTooLong {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownRRTypeSkipped(t *testing.T) {
	// Build a response containing an OPT-like record (type 41).
	var b []byte
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0x8000)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, 0) // root name
	b = binary.BigEndian.AppendUint16(b, 41)
	b = binary.BigEndian.AppendUint16(b, 4096)
	b = binary.BigEndian.AppendUint32(b, 0)
	b = binary.BigEndian.AppendUint16(b, 3)
	b = append(b, 1, 2, 3)
	m, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != 41 {
		t.Fatalf("answers = %+v", m.Answers)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{TypeA: "A", TypeAAAA: "AAAA", TypeCNAME: "CNAME",
		TypeTXT: "TXT", TypeNS: "NS", TypeSOA: "SOA", Type(99): "TYPE99"}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestPackedQueryMatchesKnownBytes(t *testing.T) {
	q := NewQuery(0x0001, "a.b", TypeA)
	b, _ := q.Pack()
	want := []byte{
		0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		1, 'a', 1, 'b', 0,
		0x00, 0x01, 0x00, 0x01,
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("packed = %x, want %x", b, want)
	}
}

// Property: any well-formed name round-trips through pack/unpack.
func TestPropertyNameRoundTrip(t *testing.T) {
	f := func(labels []uint8) bool {
		if len(labels) == 0 || len(labels) > 4 {
			return true
		}
		parts := make([]string, 0, len(labels))
		for _, l := range labels {
			n := int(l)%20 + 1
			parts = append(parts, strings.Repeat("x", n))
		}
		name := strings.Join(parts, ".")
		q := NewQuery(1, name, TypeA)
		b, err := q.Pack()
		if err != nil {
			return false
		}
		m, err := Unpack(b)
		if err != nil {
			return false
		}
		return m.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fuzz-ish — Unpack never panics on arbitrary bytes.
func TestPropertyUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", data, r)
			}
		}()
		Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: header flags survive a round trip.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra bool, rcode uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra, RCode: RCode(rcode & 0xF),
		}}
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		return got.Header == m.Header
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPackUnpackA(b *testing.B) {
	q := NewQuery(1, "www.example.com", TypeA)
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = append(resp.Answers, Resource{
		Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: net.IPv4(20, 0, 0, 1),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := resp.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompressionOnEncode(t *testing.T) {
	// A response whose answer owner repeats the question name must emit a
	// pointer, shrinking the message.
	q := NewQuery(9, "www.example.com", TypeA)
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = append(resp.Answers, Resource{
		Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 60, A: net.IPv4(1, 2, 3, 4),
	})
	packed, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, the name would appear twice (17 bytes each); with a
	// pointer the second occurrence is 2 bytes.
	wantMax := 12 + (17 + 4) + (2 + 10 + 4)
	if len(packed) > wantMax {
		t.Fatalf("packed %d bytes, want <= %d (compression missing)", len(packed), wantMax)
	}
	// And it still round-trips.
	m, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "www.example.com" || !m.Answers[0].A.Equal(net.IPv4(1, 2, 3, 4)) {
		t.Fatalf("answer = %+v", m.Answers[0])
	}
}

func TestCompressionSharedSuffix(t *testing.T) {
	// a.example.com then b.example.com: the second name compresses its
	// example.com suffix.
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.Answers = append(m.Answers,
		Resource{Name: "a.example.com", Type: TypeA, Class: ClassIN, TTL: 1, A: net.IPv4(1, 1, 1, 1)},
		Resource{Name: "b.example.com", Type: TypeA, Class: ClassIN, TTL: 1, A: net.IPv4(2, 2, 2, 2)},
	)
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "a.example.com" || got.Answers[1].Name != "b.example.com" {
		t.Fatalf("answers = %+v", got.Answers)
	}
	// Compressed form beats two full names.
	uncompressed := 12 + 2*(15+10+4)
	if len(packed) >= uncompressed {
		t.Fatalf("no shrink: %d >= %d", len(packed), uncompressed)
	}
}

// Property: compression never breaks the round trip for multi-record
// messages with overlapping names.
func TestPropertyCompressionRoundTrip(t *testing.T) {
	f := func(labels []uint8) bool {
		if len(labels) == 0 || len(labels) > 6 {
			return true
		}
		m := &Message{Header: Header{ID: 7, Response: true}}
		var names []string
		for i, l := range labels {
			name := strings.Repeat(string(rune('a'+int(l)%26)), int(l)%10+1) + ".shared.example"
			if i%2 == 0 {
				name = "deep." + name
			}
			names = append(names, name)
			m.Answers = append(m.Answers, Resource{
				Name: name, Type: TypeA, Class: ClassIN, TTL: 1, A: net.IPv4(9, 9, byte(i), 9),
			})
		}
		packed, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(packed)
		if err != nil || len(got.Answers) != len(names) {
			return false
		}
		for i, n := range names {
			if got.Answers[i].Name != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
