package mitm

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"panoptes/internal/pki"
)

// TestLeafCertSingleflight hammers a cold cert cache from 32 goroutines
// asking for the same host: exactly one mint (miss) may happen, everyone
// else must wait for it and be served the same certificate as a hit.
func TestLeafCertSingleflight(t *testing.T) {
	ca, err := pki.NewCA("singleflight test CA", time.Now)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{CA: ca, Dial: func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("no upstream in this test")
	}})
	if err != nil {
		t.Fatal(err)
	}

	const callers = 32
	certs := make([]interface{}, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c, err := p.leafFor("tracker.example.com")
			if err != nil {
				t.Errorf("leafFor: %v", err)
				return
			}
			certs[i] = c
		}(i)
	}
	close(start)
	wg.Wait()

	hits, misses := p.CertCacheStats()
	if misses != 1 {
		t.Fatalf("cold cache minted %d times for one host, want exactly 1", misses)
	}
	if hits != callers-1 {
		t.Fatalf("hits = %d, want %d (waiters count as hits)", hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if certs[i] != certs[0] {
			t.Fatalf("caller %d got a different certificate pointer", i)
		}
	}

	// A second host is its own flight.
	if _, err := p.leafFor("other.example.com"); err != nil {
		t.Fatal(err)
	}
	if _, misses := p.CertCacheStats(); misses != 2 {
		t.Fatalf("misses after second host = %d, want 2", misses)
	}
}

// TestLeafCertNoCacheNoDedup checks the cache-disabled ablation still
// pays one mint per handshake — disabling the cache must disable the
// singleflight too, or the ablation would stop measuring mint cost.
func TestLeafCertNoCacheNoDedup(t *testing.T) {
	ca, err := pki.NewCA("ablation test CA", time.Now)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{CA: ca, DisableCertCache: true, Dial: func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("no upstream in this test")
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.leafFor("tracker.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := p.CertCacheStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}
