package mitm

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/device"
	"panoptes/internal/netsim"
	"panoptes/internal/pki"
	"panoptes/internal/taint"
	"panoptes/internal/vclock"
)

// rig is a full interception testbed: virtual internet, device with
// diversion rules, an HTTPS upstream signed by the public CA, and the
// proxy with a taint splitter.
type rig struct {
	inet     *netsim.Internet
	dev      *device.Device
	proxy    *Proxy
	db       *capture.DB
	visits   *capture.VisitContext
	splitter *taint.SplitterAddon
	token    string
	publicCA *pki.CA
	mitmCA   *pki.CA
	browser  *device.Package
	seen     *upstreamLog
}

type upstreamLog struct {
	mu      sync.Mutex
	headers []http.Header
	paths   []string
}

func (u *upstreamLog) record(r *http.Request) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.headers = append(u.headers, r.Header.Clone())
	u.paths = append(u.paths, r.URL.RequestURI())
}

func newRig(t *testing.T, cfgMod func(*Config)) *rig {
	t.Helper()
	clock := vclock.New()
	inet := netsim.New()
	dev, err := device.New(clock, inet)
	if err != nil {
		t.Fatal(err)
	}

	publicCA, err := pki.NewCA("Public Web Root", clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	mitmCA, err := pki.NewCA("panoptes mitmproxy", clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	dev.InstallCA(mitmCA.Cert)
	dev.InstallCA(publicCA.Cert)

	// Upstream HTTPS site.
	seen := &upstreamLog{}
	siteL, _, err := inet.ListenDomain("site.example", "US", 443)
	if err != nil {
		t.Fatal(err)
	}
	siteCert, err := publicCA.Issue("site.example")
	if err != nil {
		t.Fatal(err)
	}
	siteSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.record(r)
		fmt.Fprintf(w, "hello from %s%s", r.Host, r.URL.Path)
	})}
	go siteSrv.Serve(tls.NewListener(siteL, &tls.Config{Certificates: []tls.Certificate{siteCert}}))
	t.Cleanup(func() { siteSrv.Close() })

	// Plain-HTTP upstream too.
	plainL, _, err := inet.ListenDomain("plain.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	plainSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.record(r)
		io.WriteString(w, "plain ok")
	})}
	go plainSrv.Serve(plainL)
	t.Cleanup(func() { plainSrv.Close() })

	// Proxy container, running under its own UID on the device.
	proxyPkg := dev.Install("org.debian.mitmproxy")
	cfg := Config{
		CA:            mitmCA,
		UpstreamRoots: &tls.Config{RootCAs: publicCA.Pool(), Time: clock.Now},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return dev.DialContext(ctx, proxyPkg.UID, addr)
		},
		Now: clock.Now,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	proxy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := capture.NewDB()
	visits := capture.NewVisitContext()
	token := taint.NewToken()
	splitter := taint.NewSplitter(token, db, visits)
	proxy.Use(splitter)

	proxyL, err := inet.ListenIP(dev.IP, 8080)
	if err != nil {
		t.Fatal(err)
	}
	go proxy.Serve(proxyL)
	t.Cleanup(func() { proxyL.Close(); proxy.Close() })

	browser := dev.Install("com.test.browser")
	if err := dev.DivertBrowser(browser.UID, "192.168.1.100:8080"); err != nil {
		t.Fatal(err)
	}
	visits.SetBrowser(browser.UID, "TestBrowser")

	return &rig{
		inet: inet, dev: dev, proxy: proxy, db: db, visits: visits,
		splitter: splitter, token: token, publicCA: publicCA, mitmCA: mitmCA,
		browser: browser, seen: seen,
	}
}

// appClient builds an HTTP client that dials through the device as the
// browser app and trusts the device trust store (mitm CA included).
func (r *rig) appClient() *http.Client {
	pool := r.dev.TrustedRoots()
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return r.dev.DialContext(ctx, r.browser.UID, addr)
		},
		TLSClientConfig:   &tls.Config{RootCAs: pool, Time: r.dev.Clock.Now},
		DisableKeepAlives: false,
	}}
}

func TestTransparentHTTPSInterception(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()

	// Tainted (engine) request.
	req, _ := http.NewRequest("GET", "https://site.example/page?q=1", nil)
	taint.Inject(req.Header, r.token)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "hello from site.example/page") {
		t.Fatalf("resp = %d %q", resp.StatusCode, body)
	}

	// Untainted (native) request.
	resp2, err := client.Get("https://site.example/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()

	if got := r.db.Engine.Len(); got != 1 {
		t.Fatalf("engine flows = %d", got)
	}
	if got := r.db.Native.Len(); got != 1 {
		t.Fatalf("native flows = %d", got)
	}
	ef := r.db.Engine.All()[0]
	if ef.Host != "site.example" || ef.Path != "/page" || ef.RawQuery != "q=1" || ef.Scheme != "https" {
		t.Fatalf("engine flow = %+v", ef)
	}
	if ef.Browser != "TestBrowser" || ef.BrowserUID != r.browser.UID {
		t.Fatalf("flow attribution = %+v", ef)
	}
	if ef.Status != 200 || ef.ReqBytes <= 0 || ef.RespBytes <= 0 {
		t.Fatalf("flow accounting = %+v", ef)
	}

	// The upstream never saw the taint header.
	r.seen.mu.Lock()
	defer r.seen.mu.Unlock()
	for _, h := range r.seen.headers {
		if h.Get(taint.HeaderName) != "" {
			t.Fatal("taint header leaked upstream")
		}
	}
}

func TestPlainHTTPInterception(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()
	resp, err := client.Get("http://plain.example/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "plain ok" {
		t.Fatalf("body = %q", body)
	}
	if r.db.Native.Len() != 1 {
		t.Fatalf("native = %d", r.db.Native.Len())
	}
	if f := r.db.Native.All()[0]; f.Scheme != "http" || f.Host != "plain.example" {
		t.Fatalf("flow = %+v", f)
	}
}

func TestVisitAnnotation(t *testing.T) {
	r := newRig(t, nil)
	r.visits.BeginVisit(r.browser.UID, "https://visited.example/", true)
	client := r.appClient()
	resp, err := client.Get("https://site.example/beacon")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f := r.db.Native.All()[0]
	if f.VisitURL != "https://visited.example/" || !f.Incognito {
		t.Fatalf("flow visit = %+v", f)
	}
}

func TestPOSTBodyCaptured(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()
	payload := `{"channelId":"adxsdk","latitude":12.34}`
	resp, err := client.Post("https://site.example/api/v1/sdk_fetch", "application/json",
		strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f := r.db.Native.All()[0]
	if string(f.Body) != payload {
		t.Fatalf("captured body = %q", f.Body)
	}
	if f.Method != "POST" {
		t.Fatalf("method = %s", f.Method)
	}
}

func TestKeepAliveReusesClientConn(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()
	for i := 0; i < 5; i++ {
		resp, err := client.Get(fmt.Sprintf("https://site.example/p%d", i))
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := r.db.Native.Len(); got != 5 {
		t.Fatalf("flows = %d", got)
	}
	// One minted certificate serves all five requests.
	hits, misses := r.proxy.CertCacheStats()
	if misses != 1 {
		t.Fatalf("cert misses = %d (hits %d)", misses, hits)
	}
}

func TestCertCacheDisabled(t *testing.T) {
	r := newRig(t, func(c *Config) { c.DisableCertCache = true })
	client := r.appClient()
	client.Transport.(*http.Transport).DisableKeepAlives = true
	for i := 0; i < 3; i++ {
		resp, err := client.Get("https://site.example/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	_, misses := r.proxy.CertCacheStats()
	if misses != 3 {
		t.Fatalf("misses = %d, want 3 (no cache)", misses)
	}
}

func TestPinnedAppRejectsMintedCert(t *testing.T) {
	r := newRig(t, nil)
	// The app pins the real site key, which the proxy does not hold.
	realLeaf, _ := r.publicCA.Issue("site.example")
	pins := pki.NewPinSet()
	pins.Add("site.example", realLeaf.Leaf)

	tcfg := &tls.Config{
		RootCAs: r.dev.TrustedRoots(),
		Time:    r.dev.Clock.Now,
		VerifyPeerCertificate: func(raw [][]byte, chains [][]*x509.Certificate) error {
			leaf, err := x509.ParseCertificate(raw[0])
			if err != nil {
				return err
			}
			return pins.Verify("site.example", leaf)
		},
	}
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return r.dev.DialContext(ctx, r.browser.UID, addr)
		},
		TLSClientConfig: tcfg,
	}}
	_, err := client.Get("https://site.example/pinned")
	if err == nil {
		t.Fatal("pinned client accepted the MITM certificate")
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.proxy.HandshakeFailures() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if r.proxy.HandshakeFailures() == 0 {
		t.Fatal("handshake failure not counted")
	}
	if r.db.Engine.Len()+r.db.Native.Len() != 0 {
		t.Fatal("pinned flow recorded despite failed handshake")
	}
}

func TestUpstreamFailureGives502(t *testing.T) {
	r := newRig(t, nil)
	// A domain that resolves but has no listener.
	r.inet.RegisterDomain("dead.example", "US")
	client := r.appClient()
	resp, err := client.Get("https://dead.example/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d body=%q", resp.StatusCode, body)
	}
	f := r.db.Native.All()[0]
	if f.Err == "" || f.Status != http.StatusBadGateway {
		t.Fatalf("flow = %+v", f)
	}
}

func TestForgedTaintCountsAsNative(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()
	req, _ := http.NewRequest("GET", "https://site.example/forged", nil)
	req.Header.Set(taint.HeaderName, "not-the-campaign-token")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r.db.Native.Len() != 1 || r.db.Engine.Len() != 0 {
		t.Fatalf("engine=%d native=%d", r.db.Engine.Len(), r.db.Native.Len())
	}
	if r.splitter.Mismatched() != 1 {
		t.Fatalf("mismatched = %d", r.splitter.Mismatched())
	}
}

func TestNewRequiresCAAndDial(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestConcurrentInterception(t *testing.T) {
	r := newRig(t, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := r.appClient()
			req, _ := http.NewRequest("GET", fmt.Sprintf("https://site.example/c%d", i), nil)
			if i%2 == 0 {
				taint.Inject(req.Header, r.token)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	if r.db.Engine.Len() != 8 || r.db.Native.Len() != 8 {
		t.Fatalf("engine=%d native=%d", r.db.Engine.Len(), r.db.Native.Len())
	}
}

// vetoAddon blocks any request whose path contains "tracker".
type vetoAddon struct{ blocked int }

func (v *vetoAddon) Request(f *capture.Flow, req *http.Request)    {}
func (v *vetoAddon) Response(f *capture.Flow, resp *http.Response) {}
func (v *vetoAddon) Veto(f *capture.Flow, req *http.Request) error {
	if strings.Contains(f.Path, "tracker") {
		v.blocked++
		return fmt.Errorf("test policy")
	}
	return nil
}

func TestVetoerBlocksAtProxy(t *testing.T) {
	r := newRig(t, nil)
	veto := &vetoAddon{}
	r.proxy.Use(veto)
	client := r.appClient()

	// Blocked path → 403 from the proxy, upstream never contacted.
	before := len(r.seen.headers)
	resp, err := client.Get("https://site.example/tracker/beacon")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), "blocked") {
		t.Fatalf("resp = %d %q", resp.StatusCode, body)
	}
	r.seen.mu.Lock()
	after := len(r.seen.headers)
	r.seen.mu.Unlock()
	if after != before {
		t.Fatal("vetoed request reached upstream")
	}
	// The flow is still recorded (observed, not delivered) with the veto.
	f := r.db.Native.All()[0]
	if f.Status != http.StatusForbidden || !strings.Contains(f.Err, "vetoed") {
		t.Fatalf("flow = %+v", f)
	}

	// Unblocked path continues to work on the same client.
	resp2, err := client.Get("https://site.example/fine")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("follow-up status = %d", resp2.StatusCode)
	}
	if veto.blocked != 1 {
		t.Fatalf("veto count = %d", veto.blocked)
	}
}

func TestKeepAliveSurvivesVeto(t *testing.T) {
	r := newRig(t, nil)
	r.proxy.Use(&vetoAddon{})
	client := r.appClient()
	// Alternate blocked and allowed requests over a reused connection.
	for i := 0; i < 6; i++ {
		path := "/fine"
		want := 200
		if i%2 == 0 {
			path = "/tracker/x"
			want = 403
		}
		resp, err := client.Get("https://site.example" + path)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("req %d status = %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestMalformedHTTPDropsConnection(t *testing.T) {
	r := newRig(t, nil)
	conn, err := r.dev.DialContext(context.Background(), r.browser.UID, "site.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tconn := tls.Client(conn, &tls.Config{RootCAs: r.dev.TrustedRoots(), Time: r.dev.Clock.Now,
		ServerName: "site.example"})
	if err := tconn.Handshake(); err != nil {
		t.Fatal(err)
	}
	// Garbage instead of an HTTP request line.
	tconn.Write([]byte("NOT AN HTTP REQUEST\r\n\r\n"))
	buf := make([]byte, 64)
	tconn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := tconn.Read(buf); err == nil && n > 0 {
		// Whatever comes back must not be a 200.
		if strings.Contains(string(buf[:n]), "200") {
			t.Fatalf("malformed request got a response: %q", buf[:n])
		}
	}
	if r.db.Engine.Len()+r.db.Native.Len() != 0 {
		t.Fatal("malformed request produced a flow")
	}
}

func TestLargePOSTBodyCapped(t *testing.T) {
	r := newRig(t, nil)
	client := r.appClient()
	big := strings.Repeat("A", 64*1024)
	resp, err := client.Post("https://site.example/upload", "application/octet-stream",
		strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f := r.db.Native.All()[0]
	if len(f.Body) != capture.MaxBodyCapture {
		t.Fatalf("captured body = %d, want cap %d", len(f.Body), capture.MaxBodyCapture)
	}
	// Wire size still counts the full body.
	if f.ReqBytes < 64*1024 {
		t.Fatalf("req bytes = %d", f.ReqBytes)
	}
	// Upstream received the whole thing.
	r.seen.mu.Lock()
	defer r.seen.mu.Unlock()
	if len(r.seen.paths) == 0 || r.seen.paths[len(r.seen.paths)-1] != "/upload" {
		t.Fatal("upload did not reach upstream")
	}
}

func TestSNIFallbackToOriginalDst(t *testing.T) {
	// A client that sends no SNI: the proxy mints for the original
	// destination host instead.
	r := newRig(t, nil)
	conn, err := r.dev.DialContext(context.Background(), r.browser.UID, "site.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tconn := tls.Client(conn, &tls.Config{
		RootCAs: r.dev.TrustedRoots(), Time: r.dev.Clock.Now,
		// No ServerName: skip verification of the name but check the cert.
		InsecureSkipVerify: true,
	})
	if err := tconn.Handshake(); err != nil {
		t.Fatal(err)
	}
	leaf := tconn.ConnectionState().PeerCertificates[0]
	found := false
	for _, n := range leaf.DNSNames {
		if n == "site.example" {
			found = true
		}
	}
	if !found {
		t.Fatalf("minted cert names = %v", leaf.DNSNames)
	}
}

// TestExplicitProxyCONNECT exercises regular-proxy mode: a client with no
// diversion metadata opens an HTTP CONNECT tunnel (the way curl speaks
// to mitmproxy) and the interception proceeds identically.
func TestExplicitProxyCONNECT(t *testing.T) {
	r := newRig(t, nil)
	proxyURL, _ := url.Parse("http://192.168.1.100:8080")
	client := &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyURL(proxyURL),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			// Plain dial — no device metadata, no diversion.
			return r.inet.Dial(ctx, addr)
		},
		TLSClientConfig: &tls.Config{RootCAs: r.dev.TrustedRoots(), Time: r.dev.Clock.Now},
	}}
	resp, err := client.Get("https://site.example/via-connect")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "/via-connect") {
		t.Fatalf("resp = %d %q", resp.StatusCode, body)
	}
	f := r.db.Native.All()[0]
	if f.Host != "site.example" || f.Path != "/via-connect" || f.Scheme != "https" {
		t.Fatalf("flow = %+v", f)
	}
	// No UID is known for explicit-mode clients.
	if f.BrowserUID != -1 {
		t.Fatalf("uid = %d, want -1", f.BrowserUID)
	}
}

func TestExplicitProxyRejectsNonConnect(t *testing.T) {
	r := newRig(t, nil)
	conn, err := r.inet.Dial(context.Background(), "192.168.1.100:8080")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "405") {
		t.Fatalf("response = %q", buf[:n])
	}
}
