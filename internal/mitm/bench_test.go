package mitm

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"panoptes/internal/capture"
)

// BenchmarkMitmBodyAlloc measures the steady-state allocation cost of
// the two body-handling hot paths. Pre-diet, buildFlow made three
// body-sized copies per request (io.ReadAll growth, the capped capture
// copy, and a string conversion for the replay reader) plus a fresh
// Flow, header map and header-value slices every exchange; with the
// recycled Flow pool and pooled buffers the steady state is down to the
// replay reader pair and one header-value backing array.
func BenchmarkMitmBodyAlloc(b *testing.B) {
	u, _ := url.Parse("https://dest.test/submit?v=1")
	now := func() time.Time { return time.Unix(1700000000, 0) }
	for _, size := range []int{512, 8 << 10, 256 << 10} {
		payload := bytes.Repeat([]byte("x"), size)
		b.Run(fmt.Sprintf("buildFlow/body=%d", size), func(b *testing.B) {
			p := &Proxy{Now: now}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := &http.Request{
					Method: "POST", URL: u, Header: http.Header{},
					Body: io.NopCloser(bytes.NewReader(payload)), ContentLength: int64(size),
				}
				f, buf := p.buildFlow(req, "https", "dest.test", 7, capture.TransportH1, "")
				if f.ReqBytes < size {
					b.Fatalf("short read: %d", f.ReqBytes)
				}
				if buf != nil {
					bodyPool.Put(buf)
				}
				f.Release()
			}
		})
		b.Run(fmt.Sprintf("writeResponse/body=%d", size), func(b *testing.B) {
			p := &Proxy{Now: now}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			resp := &http.Response{
				StatusCode:    200,
				Header:        http.Header{"Content-Type": {"application/json"}},
				ContentLength: int64(size),
			}
			for i := 0; i < b.N; i++ {
				if _, err := p.writeResponse(io.Discard, resp, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
