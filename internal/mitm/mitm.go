// Package mitm implements the transparent Man-In-The-Middle proxy at the
// centre of the Panoptes testbed (paper §2.2): connections diverted by the
// per-UID iptables rules arrive here with their original destination
// preserved; the proxy terminates TLS with a certificate minted on the
// fly from its CA (installed in the device trust store), parses HTTP/1.1,
// runs an addon chain over each exchange (the taint-splitting addon lives
// in internal/taint), and forwards the request to the real destination
// over its own upstream TLS session.
//
// Apps that pin their vendor's key reject the minted certificate and the
// flow never completes — the paper's footnote 3 behaviour, which the
// proxy surfaces as a handshake-failure counter rather than hiding.
//
// The data plane is built for throughput: client-facing handshakes
// resume via shared session-ticket keys, upstream dials resume via a
// shared session cache and reuse pooled connections (internal/connpool),
// flow records are reference-counted recycled structs
// (capture.AcquireFlow), and Serve runs one accept goroutine per core.
package mitm

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"panoptes/internal/bytepool"
	"panoptes/internal/capture"
	"panoptes/internal/connpool"
	"panoptes/internal/faultsim"
	"panoptes/internal/h2"
	"panoptes/internal/netsim"
	"panoptes/internal/obs"
	"panoptes/internal/pki"
	"panoptes/internal/ws"
)

// bodyPool recycles the scratch buffers that read request and response
// bodies off the wire. Classes cover small telemetry beacons, typical
// page assets, and the megabyte tail; a pathological body beyond 4× the
// top class is dropped on Put rather than pinned.
var bodyPool = bytepool.New("mitm_body", 4<<10, 64<<10, 1<<20)

// Observability instruments the proxy hot paths against the default obs
// registry. Counters are process-wide totals; per-proxy numbers stay
// available through CertCacheStats/ResumptionStats/ConnReuseStats.
var (
	mHandshakeOK     = obs.Default.Counter("mitm_handshakes_total", "result", "ok")
	mHandshakeFail   = obs.Default.Counter("mitm_handshakes_total", "result", "fail")
	mHsResumedClient = obs.Default.Counter("mitm_handshake_resumed_total", "side", "client")
	mHsResumedUp     = obs.Default.Counter("mitm_handshake_resumed_total", "side", "upstream")
	mConnReused      = obs.Default.Counter("mitm_conn_reuse_total", "result", "reused")
	mConnDialed      = obs.Default.Counter("mitm_conn_reuse_total", "result", "dialed")
	mCertHit         = obs.Default.Counter("mitm_cert_cache_total", "result", "hit")
	mCertMiss        = obs.Default.Counter("mitm_cert_cache_total", "result", "miss")
	mPinningFail     = obs.Default.Counter("mitm_pinning_failures_total")
	mReqHTTP         = obs.Default.Counter("mitm_requests_total", "scheme", "http")
	mReqHTTPS        = obs.Default.Counter("mitm_requests_total", "scheme", "https")
	mVetoed          = obs.Default.Counter("mitm_vetoed_total")
	mUpstreamErr     = obs.Default.Counter("mitm_upstream_errors_total")
	mBytesUp         = obs.Default.Counter("mitm_bytes_total", "dir", "up")
	mBytesDown       = obs.Default.Counter("mitm_bytes_total", "dir", "down")
	mActiveConns     = obs.Default.Gauge("mitm_active_conns")
	mReqLatency      = obs.Default.Histogram("mitm_request_duration_seconds", nil)

	mFlowsH1  = obs.Default.Counter("mitm_transport_flows_total", "transport", capture.TransportH1)
	mFlowsH2  = obs.Default.Counter("mitm_transport_flows_total", "transport", capture.TransportH2)
	mFlowsWS  = obs.Default.Counter("mitm_transport_flows_total", "transport", capture.TransportWS)
	mFlowsDoH = obs.Default.Counter("mitm_transport_flows_total", "transport", capture.TransportDoH)
)

// countTransportFlow bumps the per-transport flow family for one
// captured flow record.
func countTransportFlow(t string) {
	switch t {
	case capture.TransportH2:
		mFlowsH2.Inc()
	case capture.TransportWS:
		mFlowsWS.Inc()
	case capture.TransportDoH:
		mFlowsDoH.Inc()
	default:
		mFlowsH1.Inc()
	}
}

func init() {
	obs.Default.Help("mitm_handshakes_total", "Client-side TLS handshakes by result.")
	obs.Default.Help("mitm_handshake_resumed_total", "TLS handshakes completed via session resumption, by side (client = intercepted app, upstream = real origin).")
	obs.Default.Help("mitm_conn_reuse_total", "Upstream exchanges by connection source (reused = idle pool, dialed = fresh).")
	obs.Default.Help("mitm_cert_cache_total", "Leaf-certificate cache lookups by result.")
	obs.Default.Help("mitm_pinning_failures_total", "Handshakes rejected by certificate-pinning clients (paper footnote 3).")
	obs.Default.Help("mitm_requests_total", "Intercepted HTTP exchanges by scheme.")
	obs.Default.Help("mitm_bytes_total", "Request (up) and response (down) wire bytes through the proxy.")
	obs.Default.Help("mitm_active_conns", "Client connections currently being served.")
	obs.Default.Help("mitm_request_duration_seconds", "Wall-clock latency of one proxied exchange.")
	obs.Default.Help("mitm_transport_flows_total", "Captured flow records by data-plane transport (h1, h2, ws frame, doh message).")
}

// Addon observes and may mutate intercepted exchanges, in the manner of a
// mitmproxy addon. Request runs after the flow is populated and before
// the request is forwarded upstream (header mutations propagate).
// Response runs after the upstream response arrives.
type Addon interface {
	Request(f *capture.Flow, req *http.Request)
	Response(f *capture.Flow, resp *http.Response)
}

// Vetoer is an optional extension of Addon: a non-nil Veto blocks the
// exchange — the proxy answers the client with 403 and never contacts
// the destination. The countermeasure prototype (internal/blocker) uses
// it to drop native tracking requests at the network vantage point.
// Veto runs after every addon's Request hook.
type Vetoer interface {
	Veto(f *capture.Flow, req *http.Request) error
}

// Dialer opens upstream connections. The device network stack provides
// one bound to the proxy container's own UID, so upstream traffic is not
// re-diverted into the proxy.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// Clock supplies flow timestamps; the simulation passes the virtual
// clock's Now.
type Clock func() time.Time

// Proxy is the transparent MITM proxy.
type Proxy struct {
	// CA signs the interception certificates.
	CA *pki.CA
	// UpstreamRoots validates real server certificates.
	UpstreamRoots *tls.Config
	// Dial opens upstream connections.
	Dial Dialer
	// Now timestamps flows.
	Now Clock
	// Trace, when non-nil, hangs handshake/exchange spans off the active
	// visit span of the owning browser UID.
	Trace *obs.Tracer

	// mu guards the cert cache/flight maps and addon appends; the hot
	// accept/exchange paths read only atomics.
	mu        sync.Mutex
	addons    atomic.Pointer[[]Addon]
	certCache map[string]*tls.Certificate
	// certFlight dedupes concurrent cold-cache mints per host: the first
	// handshake to miss becomes the minter, later ones wait on its call.
	certFlight map[string]*certCall

	certHit, certMiss, hsFails atomic.Int64
	hsResumed, hsFull          atomic.Int64 // client-facing handshakes
	upResumed, upFull          atomic.Int64 // upstream handshakes
	connReused, connDialed     atomic.Int64 // upstream exchanges by conn source

	// serverTLS is the client-facing config template. Its session-ticket
	// keys are set once here so every per-connection clone shares them —
	// without that, each clone mints its own keys and no ticket issued on
	// one connection can ever resume on another.
	serverTLS *tls.Config
	// upstreamTLS is the upstream dial template; clones share its
	// ClientSessionCache, so repeat dials to a host resume.
	upstreamTLS *tls.Config
	// pool parks idle upstream connections between exchanges (nil when
	// keep-alive is disabled).
	pool *connpool.Pool

	// transports gates the data-plane protocols the proxy speaks; nil
	// means all. h1 is always on — it is the substrate every other
	// transport falls back to.
	transports map[string]bool

	upstreamRTT  time.Duration
	acceptShards int
	closed       atomic.Bool
	faults       atomic.Pointer[faultsim.Injector]
}

// transportEnabled reports whether the proxy speaks transport t.
func (p *Proxy) transportEnabled(t string) bool {
	if p.transports == nil {
		return true
	}
	return p.transports[t]
}

// SetFaults installs (or clears, with nil) the fault injector consulted
// before TLS handshakes (tls_handshake / pin_reject), per proxied
// exchange (read_timeout / stream_reset / http_5xx / slow_response) and
// on idle-pool lookups (pool_poison).
func (p *Proxy) SetFaults(inj *faultsim.Injector) {
	if inj == nil {
		p.faults.Store(nil)
		if p.pool != nil {
			p.pool.SetFaultHook(nil)
		}
		return
	}
	p.faults.Store(inj)
	if p.pool != nil {
		p.pool.SetFaultHook(inj.PoolFault)
	}
}

func (p *Proxy) faultsInj() *faultsim.Injector { return p.faults.Load() }

// certCall is one in-flight leaf mint waiters block on.
type certCall struct {
	done chan struct{}
	cert *tls.Certificate
	err  error
}

// Config bundles proxy construction inputs.
type Config struct {
	CA            *pki.CA
	UpstreamRoots *tls.Config // TLS client config template for upstream dials
	Dial          Dialer
	Now           Clock
	// DisableCertCache turns off leaf-certificate caching (ablation).
	DisableCertCache bool
	// DisableKeepAlive turns off upstream connection reuse (ablation).
	DisableKeepAlive bool
	// DisableTLSResume turns off TLS session resumption on both sides of
	// the interception path (ablation; the determinism suite compares
	// resumed runs against this cold-handshake path).
	DisableTLSResume bool
	// AcceptShards overrides the accept-goroutine count in Serve
	// (default: GOMAXPROCS).
	AcceptShards int
	// Transports lists the enabled data-plane protocols
	// (capture.TransportH1 ... TransportDoH). Empty enables all; h1 is
	// always kept on. A disabled h2 drops the "h2" ALPN offer on both
	// sides so clients silently fall back to HTTP/1.1; a disabled ws
	// serves upgrade requests as plain (failing) HTTP; a disabled doh
	// stops tagging DNS-over-HTTPS messages as their own transport.
	Transports []string
	// UpstreamRTT models wide-area latency to the destination on the
	// wall clock, one sleep per network round trip: every forwarded
	// exchange pays one (request out, response back), and a fresh
	// upstream dial pays two more flights first (TCP connect, then the
	// TLS handshake for https) — which a pooled connection skips
	// entirely. The in-memory Internet delivers bytes instantly, which
	// leaves a simulated crawl purely CPU-bound — unlike the paper's
	// testbed, where page loads wait on a real network and connection
	// reuse plus a concurrent scheduler win by eliding and overlapping
	// those waits. Zero (the default) keeps the instant network.
	UpstreamRTT time.Duration
	// Trace receives per-exchange flow spans (may be nil).
	Trace *obs.Tracer
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.CA == nil || cfg.Dial == nil {
		return nil, errors.New("mitm: Config needs CA and Dial")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Proxy{CA: cfg.CA, UpstreamRoots: cfg.UpstreamRoots, Dial: cfg.Dial, Now: cfg.Now, Trace: cfg.Trace,
		upstreamRTT: cfg.UpstreamRTT, acceptShards: cfg.AcceptShards}
	if len(cfg.Transports) > 0 {
		p.transports = make(map[string]bool, len(cfg.Transports)+1)
		for _, t := range cfg.Transports {
			p.transports[t] = true
		}
		p.transports[capture.TransportH1] = true
	}
	if !cfg.DisableCertCache {
		p.certCache = make(map[string]*tls.Certificate)
		p.certFlight = make(map[string]*certCall)
	}
	p.serverTLS = &tls.Config{}
	if p.transportEnabled(capture.TransportH2) {
		p.serverTLS.NextProtos = []string{h2.ProtoName, "http/1.1"}
	} else {
		p.serverTLS.NextProtos = []string{"http/1.1"}
	}
	if cfg.DisableTLSResume {
		p.serverTLS.SessionTicketsDisabled = true
	} else {
		var key [32]byte
		if _, err := rand.Read(key[:]); err != nil {
			return nil, fmt.Errorf("mitm: session ticket key: %w", err)
		}
		p.serverTLS.SetSessionTicketKeys([][32]byte{key})
	}
	if cfg.UpstreamRoots != nil {
		p.upstreamTLS = cfg.UpstreamRoots.Clone()
	} else {
		p.upstreamTLS = &tls.Config{}
	}
	if !cfg.DisableTLSResume {
		p.upstreamTLS.ClientSessionCache = tls.NewLRUClientSessionCache(256)
	}
	if !cfg.DisableKeepAlive {
		p.pool = connpool.New(connpool.Config{Name: "mitm_upstream", Now: cfg.Now})
	}
	return p, nil
}

// Use appends an addon to the chain. The chain is copy-on-write: the
// exchange hot path loads it with one atomic read.
func (p *Proxy) Use(a Addon) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var list []Addon
	if old := p.addons.Load(); old != nil {
		list = append(list, *old...)
	}
	list = append(list, a)
	p.addons.Store(&list)
}

func (p *Proxy) addonList() []Addon {
	if l := p.addons.Load(); l != nil {
		return *l
	}
	return nil
}

// CertCacheStats reports leaf-cache hits and misses (mints).
func (p *Proxy) CertCacheStats() (hits, misses int) {
	return int(p.certHit.Load()), int(p.certMiss.Load())
}

// HandshakeFailures counts client-side TLS handshakes that failed —
// certificate-pinning apps rejecting the minted certificate show up here.
func (p *Proxy) HandshakeFailures() int { return int(p.hsFails.Load()) }

// ResumptionStats reports TLS handshakes by side: client-facing
// handshakes resumed via session tickets vs full, and upstream
// handshakes resumed via the shared session cache vs full.
func (p *Proxy) ResumptionStats() (clientResumed, clientFull, upstreamResumed, upstreamFull int64) {
	return p.hsResumed.Load(), p.hsFull.Load(), p.upResumed.Load(), p.upFull.Load()
}

// ConnReuseStats reports upstream exchanges served over a pooled
// connection vs a fresh dial.
func (p *Proxy) ConnReuseStats() (reused, dialed int64) {
	return p.connReused.Load(), p.connDialed.Load()
}

// PoolStats exposes the upstream idle-pool accounting (zero value when
// keep-alive is disabled).
func (p *Proxy) PoolStats() connpool.Stats {
	if p.pool == nil {
		return connpool.Stats{}
	}
	return p.pool.Stats()
}

// Close releases pooled upstream connections.
func (p *Proxy) Close() {
	p.closed.Store(true)
	if p.pool != nil {
		p.pool.CloseIdle()
	}
}

// Serve accepts and handles diverted connections until the listener
// closes. Accepting is sharded across one goroutine per core (override
// with Config.AcceptShards), so a burst of parallel clients is not
// serialised behind a single accept loop.
func (p *Proxy) Serve(l net.Listener) error {
	shards := p.acceptShards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards == 1 {
		return p.acceptLoop(l)
	}
	errs := make(chan error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.acceptLoop(l)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Proxy) acceptLoop(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go p.handleConn(conn)
	}
}

// originalDst recovers the pre-redirect destination, the in-memory
// SO_ORIGINAL_DST. Only connections that a REDIRECT verdict actually
// diverted count as transparent; anything else (a real TCP socket, or a
// direct dial to the proxy's own address) speaks explicit-proxy CONNECT.
func originalDst(c net.Conn) (addr string, uid int) {
	if mc, ok := c.(netsim.MetaConn); ok {
		m := mc.Meta()
		if m.Redirected {
			return m.OriginalDst, m.OwnerUID
		}
		return "", m.OwnerUID
	}
	return "", -1
}

func (p *Proxy) handleConn(client net.Conn) {
	defer client.Close()
	mActiveConns.Inc()
	defer mActiveConns.Dec()
	dst, uid := originalDst(client)

	br := bufio.NewReader(client)

	// Explicit-proxy mode: a plain-TCP client (no diversion metadata)
	// opens with an HTTP CONNECT naming its destination — the way curl
	// and real browsers speak to mitmproxy in regular mode. Transparent
	// clients skip this because their first byte is a TLS record (0x16)
	// or an ordinary request line.
	if dst == "" {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		switch {
		case req.Method == http.MethodConnect:
			connectDst := req.Host
			if !strings.Contains(connectDst, ":") {
				connectDst += ":443"
			}
			if _, err := fmt.Fprint(client, "HTTP/1.1 200 Connection Established\r\n\r\n"); err != nil {
				return
			}
			dst = connectDst
		case req.URL != nil && req.URL.IsAbs():
			// Absolute-form plain-HTTP proxying (curl's non-TLS mode).
			p.serveExplicitPlain(br, client, req, uid)
			return
		default:
			fmt.Fprint(client, "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n")
			return
		}
	}
	host, port, err := net.SplitHostPort(dst)
	if err != nil {
		return
	}

	first, err := br.Peek(1)
	if err != nil {
		return
	}

	if first[0] == 0x16 { // TLS ClientHello
		leafHost := host
		// Armed TLS faults (tls_handshake, pin_reject) abort the handshake
		// with a fatal alert, exactly like a pinning app slamming the door
		// on the MITM certificate. The fault fires from GetConfigForClient
		// — which runs on every ClientHello — not from certificate
		// minting, because a session-resuming handshake skips the
		// Certificate message entirely and would sail past a minting
		// failure.
		faultKind, tlsFault := p.faultsInj().TLSFault(uid, host)
		cfg := p.serverTLS.Clone()
		cfg.GetCertificate = func(chi *tls.ClientHelloInfo) (*tls.Certificate, error) {
			name := chi.ServerName
			if name == "" {
				name = leafHost
			}
			return p.leafFor(name)
		}
		if tlsFault {
			cfg.GetConfigForClient = func(chi *tls.ClientHelloInfo) (*tls.Config, error) {
				name := chi.ServerName
				if name == "" {
					name = leafHost
				}
				return nil, fmt.Errorf("mitm: injected %s for %s", faultKind, name)
			}
		}
		hsSpan := p.Trace.Active(uid).Child("mitm.handshake")
		hsSpan.SetAttr("host", host)
		tc := tls.Server(&peekedConn{Conn: client, r: br}, cfg)
		if err := tc.Handshake(); err != nil {
			p.hsFails.Add(1)
			mHandshakeFail.Inc()
			mPinningFail.Inc()
			hsSpan.SetAttr("result", "fail")
			hsSpan.End()
			return
		}
		mHandshakeOK.Inc()
		if tc.ConnectionState().DidResume {
			p.hsResumed.Add(1)
			mHsResumedClient.Inc()
		} else {
			p.hsFull.Add(1)
		}
		hsSpan.SetAttr("result", "ok")
		hsSpan.End()
		// ALPN dispatch: the negotiated protocol selects the framing the
		// rest of the connection speaks. h2 goes to the frame-level
		// server; everything else (explicit "http/1.1" or no ALPN) stays
		// on the keep-alive HTTP/1.1 loop.
		alpn := tc.ConnectionState().NegotiatedProtocol
		if alpn == h2.ProtoName {
			p.serveH2(tc, host, port, uid)
			return
		}
		p.serveHTTP(bufio.NewReader(tc), tc, "https", host, port, uid, alpn)
		return
	}
	p.serveHTTP(br, client, "http", host, port, uid, "")
}

// serveExplicitPlain handles absolute-form plain-HTTP requests from an
// explicit-proxy client, one destination per request.
func (p *Proxy) serveExplicitPlain(br *bufio.Reader, client net.Conn, first *http.Request, uid int) {
	req := first
	for {
		host := req.URL.Hostname()
		port := req.URL.Port()
		if port == "" {
			port = "80"
		}
		req.Host = req.URL.Host
		closeAfter := req.Close || strings.EqualFold(req.Header.Get("Connection"), "close")
		if !p.serveOne(p.h1ClientIO(client), req, "http", host, port, uid, capture.TransportH1, "") || closeAfter {
			return
		}
		var err error
		req, err = http.ReadRequest(br)
		if err != nil || req.URL == nil || !req.URL.IsAbs() {
			return
		}
	}
}

// peekedConn replays bytes already buffered by the peeking reader.
type peekedConn struct {
	net.Conn
	r *bufio.Reader
}

func (pc *peekedConn) Read(b []byte) (int, error) { return pc.r.Read(b) }

// leafFor returns (minting if needed) the interception certificate for a
// host. Concurrent cold-cache handshakes for the same host are
// singleflighted: one caller mints (a cache miss), the rest wait for it
// and count as hits — they were served without a signing operation.
func (p *Proxy) leafFor(host string) (*tls.Certificate, error) {
	if p.certCache == nil {
		// Cache-disabled ablation: no dedup either, every handshake pays
		// the full mint — that per-mint cost is what the ablation measures.
		p.certMiss.Add(1)
		mCertMiss.Inc()
		cert, err := p.CA.Issue(host)
		if err != nil {
			return nil, fmt.Errorf("mitm: mint certificate for %s: %w", host, err)
		}
		return &cert, nil
	}
	p.mu.Lock()
	if c, ok := p.certCache[host]; ok {
		p.mu.Unlock()
		p.certHit.Add(1)
		mCertHit.Inc()
		return c, nil
	}
	if call, ok := p.certFlight[host]; ok {
		p.mu.Unlock()
		p.certHit.Add(1)
		mCertHit.Inc()
		<-call.done
		return call.cert, call.err
	}
	call := &certCall{done: make(chan struct{})}
	p.certFlight[host] = call
	p.mu.Unlock()
	p.certMiss.Add(1)
	mCertMiss.Inc()

	cert, err := p.CA.Issue(host)
	if err != nil {
		call.err = fmt.Errorf("mitm: mint certificate for %s: %w", host, err)
	} else {
		call.cert = &cert
	}
	p.mu.Lock()
	if call.err == nil {
		p.certCache[host] = call.cert
	}
	delete(p.certFlight, host)
	p.mu.Unlock()
	close(call.done)
	return call.cert, call.err
}

// serveHTTP handles a keep-alive sequence of HTTP/1.1 requests on one
// client connection. A WebSocket upgrade request hands the connection
// over to the frame-relay path and ends the HTTP loop.
func (p *Proxy) serveHTTP(br *bufio.Reader, client net.Conn, scheme, host, port string, uid int, alpn string) {
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return // EOF or malformed: drop the connection
		}
		if p.transportEnabled(capture.TransportWS) && ws.IsUpgradeRequest(req) {
			p.serveWS(client, br, req, scheme, host, port, uid, alpn)
			return
		}
		closeAfter := req.Close || strings.EqualFold(req.Header.Get("Connection"), "close")
		if !p.serveOne(p.h1ClientIO(client), req, scheme, host, port, uid, capture.TransportH1, alpn) || closeAfter {
			return
		}
	}
}

// serveH2 handles one h2-negotiated client connection: sequential
// streams, each one exchange through the same addon/forward path as h1.
func (p *Proxy) serveH2(tc net.Conn, host, port string, uid int) {
	srv, err := h2.NewServer(tc, nil)
	if err != nil {
		return
	}
	for {
		hreq, err := srv.ReadRequest()
		if err != nil {
			return
		}
		req := hreq.HTTPRequest()
		req.RemoteAddr = tc.RemoteAddr().String()
		if !p.serveOne(h2ClientIO(srv, hreq.Stream), req, "https", host, port, uid, capture.TransportH2, h2.ProtoName) {
			return
		}
	}
}

// clientIO abstracts the client-facing write half of one exchange so
// serveOne stays framing-agnostic: h1 writes wire text, h2 writes
// frames on the exchange's stream.
type clientIO struct {
	// respondError writes a short plain-text response (veto, injected
	// fault, upstream error).
	respondError func(status int, body string) error
	// respond writes the full proxied response, returning wire bytes.
	respond func(resp *http.Response, body []byte) (int, error)
	// reset aborts the exchange abruptly for the stream_reset fault: h1
	// promises body bytes and drops the connection, h2 sends RST_STREAM.
	reset func()
}

func (p *Proxy) h1ClientIO(client net.Conn) clientIO {
	return clientIO{
		respondError: func(status int, body string) error {
			_, err := fmt.Fprintf(client,
				"HTTP/1.1 %d %s\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s",
				status, http.StatusText(status), len(body), body)
			return err
		},
		respond: func(resp *http.Response, body []byte) (int, error) {
			return p.writeResponse(client, resp, body)
		},
		reset: func() {
			// Promise 1000 body bytes, deliver a few, drop the connection:
			// the client's body read dies with an unexpected EOF.
			fmt.Fprint(client, "HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\npartial")
		},
	}
}

func h2ClientIO(srv *h2.Server, stream uint32) clientIO {
	return clientIO{
		respondError: func(status int, body string) error {
			hdr := http.Header{"Content-Type": []string{"text/plain"}}
			_, err := srv.WriteResponse(stream, status, hdr, []byte(body))
			return err
		},
		respond: func(resp *http.Response, body []byte) (int, error) {
			return srv.WriteResponse(stream, resp.StatusCode, resp.Header, body)
		},
		reset: func() { srv.WriteRST(stream) },
	}
}

// serveWS terminates an intercepted WebSocket on both sides: it accepts
// the client's upgrade, opens its own upstream WebSocket over a fresh
// (never pooled) connection, and relays messages strictly sequentially
// — one client frame forwarded, one upstream ack relayed back. The
// upgrade handshake is captured as a Status-101 flow; every
// client-originated frame becomes its own flow record (Method "WS",
// body = frame payload) so frame-borne telemetry is visible to the same
// analyses as any HTTP beacon.
func (p *Proxy) serveWS(client net.Conn, br *bufio.Reader, req *http.Request, scheme, host, port string, uid int, alpn string) {
	upFlow, reqBody := p.buildFlow(req, scheme, host, uid, capture.TransportWS, alpn)
	defer upFlow.Release()
	if reqBody != nil {
		defer bodyPool.Put(reqBody)
	}
	addons := p.addonList()
	for _, a := range addons {
		a.Request(upFlow, req)
	}

	fail := func(err error) {
		mUpstreamErr.Inc()
		upFlow.Status = http.StatusBadGateway
		upFlow.Err = err.Error()
		for _, a := range addons {
			a.Response(upFlow, nil)
		}
		body := "panoptes-mitm: upstream error: " + err.Error()
		fmt.Fprintf(client, "HTTP/1.1 502 Bad Gateway\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s",
			len(body), body)
	}

	authority := req.Host
	if authority == "" {
		authority = net.JoinHostPort(host, port)
	}
	dialAddr := authority
	if !strings.Contains(dialAddr, ":") {
		if scheme == "https" {
			dialAddr += ":443"
		} else {
			dialAddr += ":80"
		}
	}
	// WebSocket upstreams speak h1 framing under the upgrade — never
	// offer h2 — and the long-lived connection is not pool material.
	upConn, _, err := p.dialUpstream(scheme, dialAddr, []string{"http/1.1"})
	if err != nil {
		fail(fmt.Errorf("mitm: upstream %s: %w", authority, err))
		return
	}
	wsScheme := "ws"
	if scheme == "https" {
		wsScheme = "wss"
	}
	up, err := ws.Dial(wsScheme+"://"+authority+req.URL.RequestURI(), func(string) (net.Conn, error) {
		return upConn, nil
	})
	if err != nil {
		upConn.Close()
		fail(fmt.Errorf("mitm: upstream %s: %w", authority, err))
		return
	}
	defer up.Close()

	cc, err := ws.Accept(client, br, req)
	if err != nil {
		upFlow.Err = err.Error()
		for _, a := range addons {
			a.Response(upFlow, nil)
		}
		return
	}
	defer cc.Close()
	upFlow.Status = http.StatusSwitchingProtocols
	for _, a := range addons {
		a.Response(upFlow, nil)
	}

	for {
		op, msg, err := cc.ReadMessage()
		if err != nil {
			return // client closed the channel; the deferred closes tear down upstream
		}
		ff := p.buildWSFrameFlow(req, scheme, host, uid, msg, alpn)
		for _, a := range addons {
			a.Request(ff, req)
		}
		if err := up.WriteMessage(op, msg); err != nil {
			ff.Err = err.Error()
			for _, a := range addons {
				a.Response(ff, nil)
			}
			ff.Release()
			return
		}
		ackOp, ack, err := up.ReadMessage()
		if err != nil {
			ff.Err = err.Error()
		} else {
			ff.Status = http.StatusOK
			ff.RespBytes = len(ack)
			if werr := cc.WriteMessage(ackOp, ack); werr != nil {
				ff.Err = werr.Error()
			}
		}
		for _, a := range addons {
			a.Response(ff, nil)
		}
		ff.Release()
		if err != nil {
			return
		}
	}
}

// buildWSFrameFlow populates a pooled Flow for one client-originated
// WebSocket frame. The frame rides the upgrade request's URL (that is
// the endpoint the payload travels to); Method "WS" distinguishes frame
// records from the upgrade GET.
func (p *Proxy) buildWSFrameFlow(req *http.Request, scheme, host string, uid int, payload []byte, alpn string) *capture.Flow {
	f := capture.AcquireFlow()
	f.ID = capture.NextFlowID()
	f.Time = p.Now()
	f.BrowserUID = uid
	f.Method = "WS"
	f.Scheme = scheme
	f.Transport = capture.TransportWS
	f.ALPN = alpn
	f.Host = hostOnly(req, host)
	f.Path = req.URL.Path
	f.RawQuery = req.URL.RawQuery
	f.Headers = cloneHeaderInto(f.Headers, nil)
	capped := len(payload)
	if capped > capture.MaxBodyCapture {
		capped = capture.MaxBodyCapture
	}
	f.Body = append(f.Body[:0], payload[:capped]...)
	f.ReqBytes = len(payload) + 6 // payload + frame header incl. mask key
	countTransportFlow(capture.TransportWS)
	return f
}

// serveOne processes a single exchange; it reports whether the client
// connection can be reused.
func (p *Proxy) serveOne(cio clientIO, req *http.Request, scheme, host, port string, uid int, transport, alpn string) bool {
	wallStart := time.Now()
	defer func() { mReqLatency.Observe(time.Since(wallStart).Seconds()) }()
	if scheme == "https" {
		mReqHTTPS.Inc()
	} else {
		mReqHTTP.Inc()
	}
	sp := p.Trace.Active(uid).Child("mitm.exchange")
	defer sp.End()
	sp.SetAttr("host", host)
	sp.SetAttr("method", req.Method)

	flow, reqBody := p.buildFlow(req, scheme, host, uid, transport, alpn)
	sp.SetAttr("transport", flow.Transport)
	// The producer reference: released when the exchange ends, after the
	// last Status/RespBytes mutation. Every retainer that outlives the
	// exchange (store shards, pending quarantine, export batches) holds
	// its own reference by then.
	defer flow.Release()
	if reqBody != nil {
		// The replay reader handed to forward aliases this buffer;
		// recycle it only once the exchange is over.
		defer bodyPool.Put(reqBody)
	}
	mBytesUp.Add(int64(flow.ReqBytes))

	addons := p.addonList()
	splitSpan := sp.Child("taint.split")
	for _, a := range addons {
		a.Request(flow, req)
	}
	splitSpan.SetAttr("origin", string(flow.Origin))
	splitSpan.End()
	// Veto pass: any vetoing addon blocks the exchange at the proxy.
	for _, a := range addons {
		v, ok := a.(Vetoer)
		if !ok {
			continue
		}
		if err := v.Veto(flow, req); err != nil {
			mVetoed.Inc()
			sp.SetAttr("result", "vetoed")
			flow.Status = http.StatusForbidden
			flow.Err = "vetoed: " + err.Error()
			for _, a2 := range addons {
				a2.Response(flow, nil)
			}
			werr := cio.respondError(http.StatusForbidden, "panoptes-mitm: blocked: "+err.Error())
			return werr == nil
		}
	}

	// Armed flow faults fire after capture (the flow is already filed, so a
	// failed attempt's traffic can be quarantined by attempt tag) but
	// before forwarding, standing in for a misbehaving origin.
	if kind, ok := p.faultsInj().FlowFault(uid, flow.Host); ok {
		switch kind {
		case faultsim.SlowResponse:
			// Benign: the origin answers, just slowly (wall clock, like
			// UpstreamRTT). The exchange then proceeds normally.
			time.Sleep(25 * time.Millisecond)
		case faultsim.HTTP5xx:
			sp.SetAttr("result", "fault:http_5xx")
			flow.Status = http.StatusInternalServerError
			flow.Err = "faultsim: injected http_5xx"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			cio.respondError(http.StatusInternalServerError, "panoptes-faultsim: injected 500")
			return false
		case faultsim.StreamReset:
			sp.SetAttr("result", "fault:stream_reset")
			flow.Status = http.StatusOK
			flow.Err = "faultsim: injected stream_reset"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			cio.reset()
			return false
		default: // faultsim.ReadTimeout
			// The origin never answers: no response bytes, connection
			// dropped, so the client errors out reading the response.
			sp.SetAttr("result", "fault:read_timeout")
			flow.Err = "faultsim: injected read_timeout"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			return false
		}
	}

	fwdSpan := sp.Child("mitm.forward")
	resp, respBody, err := p.forward(req, scheme, host, port)
	fwdSpan.End()
	if err != nil {
		mUpstreamErr.Inc()
		sp.SetAttr("result", "upstream-error")
		flow.Status = http.StatusBadGateway
		flow.Err = err.Error()
		for _, a := range addons {
			a.Response(flow, nil)
		}
		cio.respondError(http.StatusBadGateway, "panoptes-mitm: upstream error: "+err.Error())
		return false
	}

	flow.Status = resp.StatusCode
	for _, a := range addons {
		a.Response(flow, resp)
	}

	n, werr := cio.respond(resp, respBody.Bytes())
	bodyPool.Put(respBody)
	flow.RespBytes = n
	mBytesDown.Add(int64(n))
	sp.SetAttr("status", fmt.Sprint(resp.StatusCode))
	return werr == nil
}

// dohContentType is the RFC 8484 media type; a request carrying or
// accepting it is a DNS-over-HTTPS message regardless of the connection
// framing underneath.
const dohContentType = "application/dns-message"

// isDoHRequest reports whether req is a DNS-over-HTTPS exchange (POST
// body or GET accepting a DNS message).
func isDoHRequest(req *http.Request) bool {
	return req.Header.Get("Content-Type") == dohContentType ||
		req.Header.Get("Accept") == dohContentType
}

// buildFlow populates a pooled Flow from the parsed request, consuming
// the body into a pooled scratch buffer and re-buffering it for replay.
// The caller owns the flow's producer reference and must return the
// scratch buffer (nil when the request has no body) to bodyPool after
// the exchange — the replay reader aliases it. transport is the framing
// of the client connection; a DoH message is re-tagged as its own
// transport (the framing stays visible in ALPN).
func (p *Proxy) buildFlow(req *http.Request, scheme, host string, uid int, transport, alpn string) (*capture.Flow, *bytes.Buffer) {
	f := capture.AcquireFlow()
	f.ID = capture.NextFlowID()
	f.Time = p.Now()
	f.BrowserUID = uid
	f.Method = req.Method
	f.Scheme = scheme
	f.Transport = transport
	f.ALPN = alpn
	if p.transportEnabled(capture.TransportDoH) && isDoHRequest(req) {
		f.Transport = capture.TransportDoH
	}
	countTransportFlow(f.Transport)
	f.Host = hostOnly(req, host)
	f.Path = req.URL.Path
	f.RawQuery = req.URL.RawQuery
	f.Headers = cloneHeaderInto(f.Headers, req.Header)

	// Wire-size estimate: request line + headers + body.
	size := len(req.Method) + requestURILen(req.URL) + len("HTTP/1.1") + 4
	for k, vs := range req.Header {
		for _, v := range vs {
			size += len(k) + len(v) + 4
		}
	}
	var bb *bytes.Buffer
	if req.Body != nil && req.ContentLength != 0 {
		bb = bodyPool.Get(int(req.ContentLength))
		_, _ = io.Copy(bb, io.LimitReader(req.Body, 10<<20))
		req.Body.Close()
		body := bb.Bytes()
		size += len(body)
		capped := len(body)
		if capped > capture.MaxBodyCapture {
			capped = capture.MaxBodyCapture
		}
		f.Body = append(f.Body[:0], body[:capped]...)
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	f.ReqBytes = size
	return f, bb
}

// requestURILen estimates the wire length of the request-URI without
// materialising it (http.Request.RequestURI allocates).
func requestURILen(u *url.URL) int {
	if u.Opaque != "" {
		return len(u.Opaque)
	}
	n := len(u.RawPath)
	if n == 0 {
		n = len(u.Path)
	}
	if n == 0 {
		n = 1 // bare "/"
	}
	if u.ForceQuery || u.RawQuery != "" {
		n += 1 + len(u.RawQuery)
	}
	return n
}

// cloneHeaderInto copies src into dst (reusing dst's map and making one
// backing allocation for all values, like http.Header.Clone). dst may be
// nil or hold stale keys from a recycled flow; it is returned cleared
// and repopulated.
func cloneHeaderInto(dst, src http.Header) http.Header {
	if dst == nil {
		dst = make(http.Header, len(src))
	} else {
		for k := range dst {
			delete(dst, k)
		}
	}
	n := 0
	for _, vs := range src {
		n += len(vs)
	}
	if n == 0 {
		return dst
	}
	sv := make([]string, n)
	for k, vs := range src {
		m := copy(sv, vs)
		dst[k] = sv[:m:m]
		sv = sv[m:]
	}
	return dst
}

func hostOnly(req *http.Request, fallback string) string {
	h := req.Host
	if h == "" {
		h = fallback
	}
	if strings.Contains(h, ":") {
		if only, _, err := net.SplitHostPort(h); err == nil {
			return only
		}
	}
	return h
}

// forward sends the request upstream over a pooled or freshly dialed
// connection and returns the parsed response with its body fully read
// into a pooled buffer (resp.Body replays it). The caller returns the
// buffer to bodyPool once the response is written out.
//
// Pool keys embed the negotiated ALPN (scheme|alpn|addr) so h2 and h1
// connections never cross: an idle h2 entry carries its *h2.Client
// session, an h1 entry its buffered reader. A lookup probes the h2 key
// first (when h2 is enabled) and falls back to h1; a fresh dial offers
// both protocols and files the connection under whichever the origin
// picked.
func (p *Proxy) forward(req *http.Request, scheme, host, port string) (*http.Response, *bytes.Buffer, error) {
	authority := req.Host
	if authority == "" {
		authority = net.JoinHostPort(host, port)
	} else if !strings.Contains(authority, ":") && !isDefaultPort(scheme, port) {
		authority = net.JoinHostPort(authority, port)
	}
	dialAddr := authority
	if !strings.Contains(dialAddr, ":") {
		if scheme == "https" {
			dialAddr += ":443"
		} else {
			dialAddr += ":80"
		}
	}

	// Buffer the request body once; every attempt (h1 serialisation or
	// h2 RoundTrip) replays the same bytes.
	var reqBody []byte
	if req.Body != nil && req.ContentLength > 0 {
		reqBody, _ = io.ReadAll(req.Body)
		req.Body.Close()
		req.Body = nil
	}

	if p.upstreamRTT > 0 {
		time.Sleep(p.upstreamRTT)
	}

	offerH2 := scheme == "https" && p.transportEnabled(capture.TransportH2)
	keyH1 := scheme + "|" + capture.TransportH1 + "|" + dialAddr
	keyH2 := scheme + "|" + capture.TransportH2 + "|" + dialAddr

	var wb *bytes.Buffer // lazily serialised h1 request image
	defer func() {
		if wb != nil {
			bodyPool.Put(wb)
		}
	}()

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		var pc connpool.Entry
		key := keyH1
		proto := capture.TransportH1
		reused := false
		if p.pool != nil && attempt == 0 {
			if offerH2 {
				if pc, reused = p.pool.Get(keyH2); reused {
					proto, key = capture.TransportH2, keyH2
				}
			}
			if !reused {
				pc, reused = p.pool.Get(keyH1)
			}
		}
		if reused {
			p.connReused.Add(1)
			mConnReused.Inc()
		} else {
			var protos []string
			if offerH2 {
				protos = []string{h2.ProtoName, "http/1.1"}
			}
			conn, negotiated, err := p.dialUpstream(scheme, dialAddr, protos)
			if err != nil {
				return nil, nil, fmt.Errorf("mitm: upstream %s: %w", authority, err)
			}
			p.connDialed.Add(1)
			mConnDialed.Inc()
			if negotiated == h2.ProtoName {
				hc, err := h2.NewClient(conn)
				if err != nil {
					conn.Close()
					return nil, nil, fmt.Errorf("mitm: upstream %s: %w", authority, err)
				}
				pc = connpool.Entry{Conn: conn, Session: hc}
				proto, key = capture.TransportH2, keyH2
			} else {
				pc = connpool.Entry{Conn: conn, R: bufio.NewReader(conn)}
			}
		}
		var (
			resp *http.Response
			bb   *bytes.Buffer
			err  error
		)
		if proto == capture.TransportH2 {
			resp, bb, err = p.exchangeH2(pc, key, req, reqBody)
		} else {
			if wb == nil {
				wb = bodyPool.Get(512)
				writeRequest(wb, req, authority, reqBody)
			}
			resp, bb, err = p.exchange(pc, key, wb.Bytes(), req)
		}
		if err != nil {
			if reused {
				// A pooled connection can die between exchanges (origin
				// idle timeout, injected pool poison): retry once on a
				// fresh dial before reporting the origin unreachable.
				lastErr = err
				continue
			}
			return nil, nil, fmt.Errorf("mitm: upstream %s: %w", authority, err)
		}
		return resp, bb, nil
	}
	return nil, nil, fmt.Errorf("mitm: upstream %s: %w", authority, lastErr)
}

// exchange performs one write-request/read-response round trip on pc,
// returning the connection to the pool when the response permits reuse.
func (p *Proxy) exchange(pc connpool.Entry, key string, raw []byte, req *http.Request) (*http.Response, *bytes.Buffer, error) {
	if _, err := pc.Conn.Write(raw); err != nil {
		pc.Conn.Close()
		return nil, nil, err
	}
	resp, err := http.ReadResponse(pc.R, req)
	if err != nil {
		pc.Conn.Close()
		return nil, nil, err
	}
	bb := bodyPool.Get(int(resp.ContentLength))
	if _, err := io.Copy(bb, io.LimitReader(resp.Body, 64<<20)); err != nil {
		bodyPool.Put(bb)
		pc.Conn.Close()
		return nil, nil, fmt.Errorf("read body: %w", err)
	}
	resp.Body.Close()
	if p.pool != nil && !resp.Close && resp.ProtoAtLeast(1, 1) {
		if !p.pool.Put(key, pc.Conn, pc.R) {
			pc.Conn.Close()
		}
	} else {
		pc.Conn.Close()
	}
	resp.Body = io.NopCloser(bytes.NewReader(bb.Bytes()))
	return resp, bb, nil
}

// exchangeH2 performs one round trip on a pooled h2 upstream session.
// h2 connections are always reusable after a clean exchange — the
// session (with its stream counter) travels back into the pool with the
// connection.
func (p *Proxy) exchangeH2(pc connpool.Entry, key string, req *http.Request, body []byte) (*http.Response, *bytes.Buffer, error) {
	hc, _ := pc.Session.(*h2.Client)
	if hc == nil {
		pc.Conn.Close()
		return nil, nil, errors.New("mitm: pooled h2 entry without session")
	}
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	resp, err := hc.RoundTrip(req)
	if err != nil {
		pc.Conn.Close()
		return nil, nil, err
	}
	bb := bodyPool.Get(int(resp.ContentLength))
	if _, err := io.Copy(bb, io.LimitReader(resp.Body, 64<<20)); err != nil {
		bodyPool.Put(bb)
		pc.Conn.Close()
		return nil, nil, fmt.Errorf("read body: %w", err)
	}
	resp.Body.Close()
	if p.pool == nil || !p.pool.PutEntry(key, pc) {
		pc.Conn.Close()
	}
	resp.Body = io.NopCloser(bytes.NewReader(bb.Bytes()))
	return resp, bb, nil
}

// dialUpstream opens (and, for https, handshakes) a fresh upstream
// connection, offering protos via ALPN and reporting what the origin
// negotiated ("" for cleartext or no ALPN). The upstream TLS template
// carries a shared session cache, so repeat dials to a host resume
// instead of re-handshaking.
func (p *Proxy) dialUpstream(scheme, addr string, protos []string) (net.Conn, string, error) {
	if p.upstreamRTT > 0 {
		time.Sleep(p.upstreamRTT) // TCP connect flight
	}
	raw, err := p.Dial(context.Background(), addr)
	if err != nil {
		return nil, "", err
	}
	if scheme != "https" {
		return raw, "", nil
	}
	host, _, _ := net.SplitHostPort(addr)
	tcfg := p.upstreamTLS.Clone()
	tcfg.ServerName = host
	tcfg.NextProtos = protos
	tc := tls.Client(raw, tcfg)
	if p.upstreamRTT > 0 {
		time.Sleep(p.upstreamRTT) // TLS handshake flight (1-RTT, full or resumed)
	}
	if err := tc.Handshake(); err != nil {
		raw.Close()
		return nil, "", fmt.Errorf("handshake with %s: %w", addr, err)
	}
	if tc.ConnectionState().DidResume {
		p.upResumed.Add(1)
		mHsResumedUp.Inc()
	} else {
		p.upFull.Add(1)
	}
	return tc, tc.ConnectionState().NegotiatedProtocol, nil
}

// writeRequest serialises req into buf as an origin-form HTTP/1.1
// request. Hop-by-hop headers are dropped — the upstream connection's
// keep-alive is the pool's business, not the client's — and Host and
// Content-Length are owned by the proxy. body is the request body
// forward buffered once for all attempts (nil for bodyless requests).
func writeRequest(buf *bytes.Buffer, req *http.Request, authority string, body []byte) {
	buf.WriteString(req.Method)
	buf.WriteByte(' ')
	if req.URL.Opaque != "" {
		buf.WriteString(req.URL.Opaque)
	} else {
		path := req.URL.EscapedPath()
		if path == "" {
			path = "/"
		}
		buf.WriteString(path)
		if req.URL.ForceQuery || req.URL.RawQuery != "" {
			buf.WriteByte('?')
			buf.WriteString(req.URL.RawQuery)
		}
	}
	buf.WriteString(" HTTP/1.1\r\nHost: ")
	buf.WriteString(authority)
	buf.WriteString("\r\n")
	for k, vs := range req.Header {
		if hopByHop(k) || k == "Host" || k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			buf.WriteString(k)
			buf.WriteString(": ")
			buf.WriteString(v)
			buf.WriteString("\r\n")
		}
	}
	if len(body) > 0 {
		var tmp [20]byte
		buf.WriteString("Content-Length: ")
		buf.Write(strconv.AppendInt(tmp[:0], int64(len(body)), 10))
		buf.WriteString("\r\n\r\n")
		buf.Write(body)
	} else {
		buf.WriteString("\r\n")
	}
}

// hopByHop reports whether a canonical header name is connection-scoped
// (RFC 7230 §6.1) and must not travel across the proxy.
func hopByHop(k string) bool {
	switch k {
	case "Connection", "Proxy-Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

func isDefaultPort(scheme, port string) bool {
	return (scheme == "http" && port == "80") || (scheme == "https" && port == "443")
}

// writeResponse serialises the response head and the already-read body
// to the client, returning the byte count written. Headers go out in
// map order — the count (what flow.RespBytes records) is
// order-independent, so flows stay deterministic.
func (p *Proxy) writeResponse(w io.Writer, resp *http.Response, body []byte) (int, error) {
	hb := bodyPool.Get(512)
	defer bodyPool.Put(hb)
	var tmp [20]byte
	hb.WriteString("HTTP/1.1 ")
	hb.Write(strconv.AppendInt(tmp[:0], int64(resp.StatusCode), 10))
	hb.WriteByte(' ')
	hb.WriteString(http.StatusText(resp.StatusCode))
	hb.WriteString("\r\n")
	for k, vs := range resp.Header {
		if k == "Content-Length" || hopByHop(k) {
			continue
		}
		for _, v := range vs {
			hb.WriteString(k)
			hb.WriteString(": ")
			hb.WriteString(v)
			hb.WriteString("\r\n")
		}
	}
	hb.WriteString("Content-Length: ")
	hb.Write(strconv.AppendInt(tmp[:0], int64(len(body)), 10))
	hb.WriteString("\r\n\r\n")
	headLen := hb.Len()
	if _, err := w.Write(hb.Bytes()); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return headLen, err
	}
	return headLen + len(body), nil
}

// ParseURL is a small helper exposed for addons that need to re-parse a
// flow's URL.
func ParseURL(f *capture.Flow) (*url.URL, error) {
	return url.Parse(f.URL())
}
