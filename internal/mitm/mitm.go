// Package mitm implements the transparent Man-In-The-Middle proxy at the
// centre of the Panoptes testbed (paper §2.2): connections diverted by the
// per-UID iptables rules arrive here with their original destination
// preserved; the proxy terminates TLS with a certificate minted on the
// fly from its CA (installed in the device trust store), parses HTTP/1.1,
// runs an addon chain over each exchange (the taint-splitting addon lives
// in internal/taint), and forwards the request to the real destination
// over its own upstream TLS session.
//
// Apps that pin their vendor's key reject the minted certificate and the
// flow never completes — the paper's footnote 3 behaviour, which the
// proxy surfaces as a handshake-failure counter rather than hiding.
package mitm

import (
	"bufio"
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"panoptes/internal/bytepool"
	"panoptes/internal/capture"
	"panoptes/internal/faultsim"
	"panoptes/internal/netsim"
	"panoptes/internal/obs"
	"panoptes/internal/pki"
)

// bodyPool recycles the scratch buffers that read request and response
// bodies off the wire. Classes cover small telemetry beacons, typical
// page assets, and the megabyte tail; a pathological body beyond 4× the
// top class is dropped on Put rather than pinned.
var bodyPool = bytepool.New("mitm_body", 4<<10, 64<<10, 1<<20)

// Observability instruments the proxy hot paths against the default obs
// registry. Counters are process-wide totals; per-proxy numbers stay
// available through CertCacheStats/HandshakeFailures.
var (
	mHandshakeOK   = obs.Default.Counter("mitm_handshakes_total", "result", "ok")
	mHandshakeFail = obs.Default.Counter("mitm_handshakes_total", "result", "fail")
	mCertHit       = obs.Default.Counter("mitm_cert_cache_total", "result", "hit")
	mCertMiss      = obs.Default.Counter("mitm_cert_cache_total", "result", "miss")
	mPinningFail   = obs.Default.Counter("mitm_pinning_failures_total")
	mReqHTTP       = obs.Default.Counter("mitm_requests_total", "scheme", "http")
	mReqHTTPS      = obs.Default.Counter("mitm_requests_total", "scheme", "https")
	mVetoed        = obs.Default.Counter("mitm_vetoed_total")
	mUpstreamErr   = obs.Default.Counter("mitm_upstream_errors_total")
	mBytesUp       = obs.Default.Counter("mitm_bytes_total", "dir", "up")
	mBytesDown     = obs.Default.Counter("mitm_bytes_total", "dir", "down")
	mActiveConns   = obs.Default.Gauge("mitm_active_conns")
	mReqLatency    = obs.Default.Histogram("mitm_request_duration_seconds", nil)
)

func init() {
	obs.Default.Help("mitm_handshakes_total", "Client-side TLS handshakes by result.")
	obs.Default.Help("mitm_cert_cache_total", "Leaf-certificate cache lookups by result.")
	obs.Default.Help("mitm_pinning_failures_total", "Handshakes rejected by certificate-pinning clients (paper footnote 3).")
	obs.Default.Help("mitm_requests_total", "Intercepted HTTP exchanges by scheme.")
	obs.Default.Help("mitm_bytes_total", "Request (up) and response (down) wire bytes through the proxy.")
	obs.Default.Help("mitm_active_conns", "Client connections currently being served.")
	obs.Default.Help("mitm_request_duration_seconds", "Wall-clock latency of one proxied exchange.")
}

// Addon observes and may mutate intercepted exchanges, in the manner of a
// mitmproxy addon. Request runs after the flow is populated and before
// the request is forwarded upstream (header mutations propagate).
// Response runs after the upstream response arrives.
type Addon interface {
	Request(f *capture.Flow, req *http.Request)
	Response(f *capture.Flow, resp *http.Response)
}

// Vetoer is an optional extension of Addon: a non-nil Veto blocks the
// exchange — the proxy answers the client with 403 and never contacts
// the destination. The countermeasure prototype (internal/blocker) uses
// it to drop native tracking requests at the network vantage point.
// Veto runs after every addon's Request hook.
type Vetoer interface {
	Veto(f *capture.Flow, req *http.Request) error
}

// Dialer opens upstream connections. The device network stack provides
// one bound to the proxy container's own UID, so upstream traffic is not
// re-diverted into the proxy.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// Clock supplies flow timestamps; the simulation passes the virtual
// clock's Now.
type Clock func() time.Time

// Proxy is the transparent MITM proxy.
type Proxy struct {
	// CA signs the interception certificates.
	CA *pki.CA
	// UpstreamRoots validates real server certificates.
	UpstreamRoots *tls.Config
	// Dial opens upstream connections.
	Dial Dialer
	// Now timestamps flows.
	Now Clock
	// Trace, when non-nil, hangs handshake/exchange spans off the active
	// visit span of the owning browser UID.
	Trace *obs.Tracer

	mu        sync.Mutex
	addons    []Addon
	certCache map[string]*tls.Certificate
	// certFlight dedupes concurrent cold-cache mints per host: the first
	// handshake to miss becomes the minter, later ones wait on its call.
	certFlight  map[string]*certCall
	certMiss    int
	certHit     int
	hsFails     int
	transport   *http.Transport
	upstreamRTT time.Duration
	closed      bool
	faults      *faultsim.Injector
}

// SetFaults installs (or clears, with nil) the fault injector consulted
// before TLS handshakes (tls_handshake / pin_reject) and per proxied
// exchange (read_timeout / stream_reset / http_5xx / slow_response).
func (p *Proxy) SetFaults(inj *faultsim.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = inj
}

func (p *Proxy) faultsInj() *faultsim.Injector {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// certCall is one in-flight leaf mint waiters block on.
type certCall struct {
	done chan struct{}
	cert *tls.Certificate
	err  error
}

// Config bundles proxy construction inputs.
type Config struct {
	CA            *pki.CA
	UpstreamRoots *tls.Config // TLS client config template for upstream dials
	Dial          Dialer
	Now           Clock
	// DisableCertCache turns off leaf-certificate caching (ablation).
	DisableCertCache bool
	// DisableKeepAlive turns off upstream connection reuse (ablation).
	DisableKeepAlive bool
	// UpstreamRTT models the wide-area round trip to the destination on
	// the wall clock, one sleep per forwarded exchange. The in-memory
	// Internet delivers bytes instantly, which leaves a simulated crawl
	// purely CPU-bound — unlike the paper's testbed, where page loads
	// wait on a real network and a concurrent scheduler wins by
	// overlapping those waits. Zero (the default) keeps the instant
	// network.
	UpstreamRTT time.Duration
	// Trace receives per-exchange flow spans (may be nil).
	Trace *obs.Tracer
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.CA == nil || cfg.Dial == nil {
		return nil, errors.New("mitm: Config needs CA and Dial")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Proxy{CA: cfg.CA, UpstreamRoots: cfg.UpstreamRoots, Dial: cfg.Dial, Now: cfg.Now, Trace: cfg.Trace,
		upstreamRTT: cfg.UpstreamRTT}
	if !cfg.DisableCertCache {
		p.certCache = make(map[string]*tls.Certificate)
		p.certFlight = make(map[string]*certCall)
	}
	p.transport = &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return cfg.Dial(ctx, addr)
		},
		DialTLSContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			raw, err := cfg.Dial(ctx, addr)
			if err != nil {
				return nil, err
			}
			host, _, _ := net.SplitHostPort(addr)
			var tcfg *tls.Config
			if cfg.UpstreamRoots != nil {
				tcfg = cfg.UpstreamRoots.Clone()
			} else {
				tcfg = &tls.Config{}
			}
			tcfg.ServerName = host
			tc := tls.Client(raw, tcfg)
			if err := tc.HandshakeContext(ctx); err != nil {
				raw.Close()
				return nil, fmt.Errorf("mitm: upstream handshake with %s: %w", addr, err)
			}
			return tc, nil
		},
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
		DisableKeepAlives:   cfg.DisableKeepAlive,
		ForceAttemptHTTP2:   false,
	}
	return p, nil
}

// Use appends an addon to the chain.
func (p *Proxy) Use(a Addon) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addons = append(p.addons, a)
}

// CertCacheStats reports leaf-cache hits and misses (mints).
func (p *Proxy) CertCacheStats() (hits, misses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.certHit, p.certMiss
}

// HandshakeFailures counts client-side TLS handshakes that failed —
// certificate-pinning apps rejecting the minted certificate show up here.
func (p *Proxy) HandshakeFailures() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hsFails
}

// Close releases pooled upstream connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.transport.CloseIdleConnections()
}

// Serve accepts and handles diverted connections until the listener
// closes.
func (p *Proxy) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go p.handleConn(conn)
	}
}

// originalDst recovers the pre-redirect destination, the in-memory
// SO_ORIGINAL_DST. Only connections that a REDIRECT verdict actually
// diverted count as transparent; anything else (a real TCP socket, or a
// direct dial to the proxy's own address) speaks explicit-proxy CONNECT.
func originalDst(c net.Conn) (addr string, uid int) {
	if mc, ok := c.(netsim.MetaConn); ok {
		m := mc.Meta()
		if m.Redirected {
			return m.OriginalDst, m.OwnerUID
		}
		return "", m.OwnerUID
	}
	return "", -1
}

func (p *Proxy) handleConn(client net.Conn) {
	defer client.Close()
	mActiveConns.Inc()
	defer mActiveConns.Dec()
	dst, uid := originalDst(client)

	br := bufio.NewReader(client)

	// Explicit-proxy mode: a plain-TCP client (no diversion metadata)
	// opens with an HTTP CONNECT naming its destination — the way curl
	// and real browsers speak to mitmproxy in regular mode. Transparent
	// clients skip this because their first byte is a TLS record (0x16)
	// or an ordinary request line.
	if dst == "" {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		switch {
		case req.Method == http.MethodConnect:
			connectDst := req.Host
			if !strings.Contains(connectDst, ":") {
				connectDst += ":443"
			}
			if _, err := fmt.Fprint(client, "HTTP/1.1 200 Connection Established\r\n\r\n"); err != nil {
				return
			}
			dst = connectDst
		case req.URL != nil && req.URL.IsAbs():
			// Absolute-form plain-HTTP proxying (curl's non-TLS mode).
			p.serveExplicitPlain(br, client, req, uid)
			return
		default:
			fmt.Fprint(client, "HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n")
			return
		}
	}
	host, port, err := net.SplitHostPort(dst)
	if err != nil {
		return
	}

	first, err := br.Peek(1)
	if err != nil {
		return
	}

	if first[0] == 0x16 { // TLS ClientHello
		leafHost := host
		// Armed TLS faults (tls_handshake, pin_reject) fail leaf minting so
		// the client sees a fatal handshake alert, exactly like a pinning
		// app slamming the door on the MITM certificate.
		faultKind, tlsFault := p.faultsInj().TLSFault(uid, host)
		cfg := &tls.Config{
			GetCertificate: func(chi *tls.ClientHelloInfo) (*tls.Certificate, error) {
				name := chi.ServerName
				if name == "" {
					name = leafHost
				}
				if tlsFault {
					return nil, fmt.Errorf("mitm: injected %s for %s", faultKind, name)
				}
				return p.leafFor(name)
			},
		}
		hsSpan := p.Trace.Active(uid).Child("mitm.handshake")
		hsSpan.SetAttr("host", host)
		tc := tls.Server(&peekedConn{Conn: client, r: br}, cfg)
		if err := tc.Handshake(); err != nil {
			p.mu.Lock()
			p.hsFails++
			p.mu.Unlock()
			mHandshakeFail.Inc()
			mPinningFail.Inc()
			hsSpan.SetAttr("result", "fail")
			hsSpan.End()
			return
		}
		mHandshakeOK.Inc()
		hsSpan.SetAttr("result", "ok")
		hsSpan.End()
		p.serveHTTP(bufio.NewReader(tc), tc, "https", host, port, uid)
		return
	}
	p.serveHTTP(br, client, "http", host, port, uid)
}

// serveExplicitPlain handles absolute-form plain-HTTP requests from an
// explicit-proxy client, one destination per request.
func (p *Proxy) serveExplicitPlain(br *bufio.Reader, client net.Conn, first *http.Request, uid int) {
	req := first
	for {
		host := req.URL.Hostname()
		port := req.URL.Port()
		if port == "" {
			port = "80"
		}
		req.Host = req.URL.Host
		closeAfter := req.Close || strings.EqualFold(req.Header.Get("Connection"), "close")
		if !p.serveOne(client, req, "http", host, port, uid) || closeAfter {
			return
		}
		var err error
		req, err = http.ReadRequest(br)
		if err != nil || req.URL == nil || !req.URL.IsAbs() {
			return
		}
	}
}

// peekedConn replays bytes already buffered by the peeking reader.
type peekedConn struct {
	net.Conn
	r *bufio.Reader
}

func (pc *peekedConn) Read(b []byte) (int, error) { return pc.r.Read(b) }

// leafFor returns (minting if needed) the interception certificate for a
// host. Concurrent cold-cache handshakes for the same host are
// singleflighted: one caller mints (a cache miss), the rest wait for it
// and count as hits — they were served without a signing operation.
func (p *Proxy) leafFor(host string) (*tls.Certificate, error) {
	p.mu.Lock()
	if p.certCache == nil {
		// Cache-disabled ablation: no dedup either, every handshake pays
		// the full mint — that per-mint cost is what the ablation measures.
		p.certMiss++
		p.mu.Unlock()
		mCertMiss.Inc()
		cert, err := p.CA.Issue(host)
		if err != nil {
			return nil, fmt.Errorf("mitm: mint certificate for %s: %w", host, err)
		}
		return &cert, nil
	}
	if c, ok := p.certCache[host]; ok {
		p.certHit++
		p.mu.Unlock()
		mCertHit.Inc()
		return c, nil
	}
	if call, ok := p.certFlight[host]; ok {
		p.certHit++
		p.mu.Unlock()
		mCertHit.Inc()
		<-call.done
		return call.cert, call.err
	}
	call := &certCall{done: make(chan struct{})}
	p.certFlight[host] = call
	p.certMiss++
	p.mu.Unlock()
	mCertMiss.Inc()

	cert, err := p.CA.Issue(host)
	if err != nil {
		call.err = fmt.Errorf("mitm: mint certificate for %s: %w", host, err)
	} else {
		call.cert = &cert
	}
	p.mu.Lock()
	if call.err == nil {
		p.certCache[host] = call.cert
	}
	delete(p.certFlight, host)
	p.mu.Unlock()
	close(call.done)
	return call.cert, call.err
}

// serveHTTP handles a keep-alive sequence of HTTP/1.1 requests on one
// client connection.
func (p *Proxy) serveHTTP(br *bufio.Reader, client net.Conn, scheme, host, port string, uid int) {
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return // EOF or malformed: drop the connection
		}
		closeAfter := req.Close || strings.EqualFold(req.Header.Get("Connection"), "close")
		if !p.serveOne(client, req, scheme, host, port, uid) || closeAfter {
			return
		}
	}
}

// serveOne processes a single exchange; it reports whether the client
// connection can be reused.
func (p *Proxy) serveOne(client net.Conn, req *http.Request, scheme, host, port string, uid int) bool {
	wallStart := time.Now()
	defer func() { mReqLatency.Observe(time.Since(wallStart).Seconds()) }()
	if scheme == "https" {
		mReqHTTPS.Inc()
	} else {
		mReqHTTP.Inc()
	}
	sp := p.Trace.Active(uid).Child("mitm.exchange")
	defer sp.End()
	sp.SetAttr("host", host)
	sp.SetAttr("method", req.Method)

	flow := p.buildFlow(req, scheme, host, uid)
	mBytesUp.Add(int64(flow.ReqBytes))

	p.mu.Lock()
	addons := append([]Addon(nil), p.addons...)
	p.mu.Unlock()
	splitSpan := sp.Child("taint.split")
	for _, a := range addons {
		a.Request(flow, req)
	}
	splitSpan.SetAttr("origin", string(flow.Origin))
	splitSpan.End()
	// Veto pass: any vetoing addon blocks the exchange at the proxy.
	for _, a := range addons {
		v, ok := a.(Vetoer)
		if !ok {
			continue
		}
		if err := v.Veto(flow, req); err != nil {
			mVetoed.Inc()
			sp.SetAttr("result", "vetoed")
			flow.Status = http.StatusForbidden
			flow.Err = "vetoed: " + err.Error()
			for _, a2 := range addons {
				a2.Response(flow, nil)
			}
			body := "panoptes-mitm: blocked: " + err.Error()
			_, werr := fmt.Fprintf(client,
				"HTTP/1.1 403 Forbidden\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s",
				len(body), body)
			return werr == nil
		}
	}

	// Armed flow faults fire after capture (the flow is already filed, so a
	// failed attempt's traffic can be quarantined by attempt tag) but
	// before forwarding, standing in for a misbehaving origin.
	if kind, ok := p.faultsInj().FlowFault(uid, flow.Host); ok {
		switch kind {
		case faultsim.SlowResponse:
			// Benign: the origin answers, just slowly (wall clock, like
			// UpstreamRTT). The exchange then proceeds normally.
			time.Sleep(25 * time.Millisecond)
		case faultsim.HTTP5xx:
			sp.SetAttr("result", "fault:http_5xx")
			flow.Status = http.StatusInternalServerError
			flow.Err = "faultsim: injected http_5xx"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			body := "panoptes-faultsim: injected 500"
			fmt.Fprintf(client,
				"HTTP/1.1 500 Internal Server Error\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s",
				len(body), body)
			return false
		case faultsim.StreamReset:
			// Promise 1000 body bytes, deliver a few, drop the connection:
			// the client's body read dies with an unexpected EOF.
			sp.SetAttr("result", "fault:stream_reset")
			flow.Status = http.StatusOK
			flow.Err = "faultsim: injected stream_reset"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			fmt.Fprint(client, "HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\npartial")
			return false
		default: // faultsim.ReadTimeout
			// The origin never answers: no response bytes, connection
			// dropped, so the client errors out reading the response.
			sp.SetAttr("result", "fault:read_timeout")
			flow.Err = "faultsim: injected read_timeout"
			for _, a := range addons {
				a.Response(flow, nil)
			}
			return false
		}
	}

	fwdSpan := sp.Child("mitm.forward")
	resp, err := p.forward(req, scheme, host, port)
	fwdSpan.End()
	if err != nil {
		mUpstreamErr.Inc()
		sp.SetAttr("result", "upstream-error")
		flow.Status = http.StatusBadGateway
		flow.Err = err.Error()
		for _, a := range addons {
			a.Response(flow, nil)
		}
		body := "panoptes-mitm: upstream error: " + err.Error()
		fmt.Fprintf(client, "HTTP/1.1 502 Bad Gateway\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s",
			len(body), body)
		return false
	}

	flow.Status = resp.StatusCode
	for _, a := range addons {
		a.Response(flow, resp)
	}

	n, werr := p.writeResponse(client, resp)
	flow.RespBytes = n
	mBytesDown.Add(int64(n))
	sp.SetAttr("status", fmt.Sprint(resp.StatusCode))
	resp.Body.Close()
	return werr == nil
}

// buildFlow populates a Flow from the parsed request, consuming and
// re-buffering the body prefix.
func (p *Proxy) buildFlow(req *http.Request, scheme, host string, uid int) *capture.Flow {
	f := &capture.Flow{
		ID:         capture.NextFlowID(),
		Time:       p.Now(),
		BrowserUID: uid,
		Method:     req.Method,
		Scheme:     scheme,
		Host:       hostOnly(req, host),
		Path:       req.URL.Path,
		RawQuery:   req.URL.RawQuery,
		Headers:    req.Header.Clone(),
	}

	// Wire-size estimate: request line + headers + body.
	size := len(req.Method) + len(req.URL.RequestURI()) + len("HTTP/1.1") + 4
	for k, vs := range req.Header {
		for _, v := range vs {
			size += len(k) + len(v) + 4
		}
	}
	if req.Body != nil && req.ContentLength != 0 {
		// Read through a pooled scratch buffer, then make ONE exact-size
		// allocation holding the replayable body. The old path allocated
		// three times per request: io.ReadAll's growth chain, the capped
		// f.Body copy, and a full string(body) copy for the re-buffered
		// reader.
		buf := bodyPool.Get(int(req.ContentLength))
		_, _ = io.Copy(buf, io.LimitReader(req.Body, 10<<20))
		req.Body.Close()
		body := append(make([]byte, 0, buf.Len()), buf.Bytes()...)
		bodyPool.Put(buf)
		size += len(body)
		if len(body) > capture.MaxBodyCapture {
			// Copy the capped prefix so the retained Flow does not pin
			// the full-size backing array for the capture's lifetime.
			f.Body = append([]byte(nil), body[:capture.MaxBodyCapture]...)
		} else {
			f.Body = body // small bodies share the exact-size allocation
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	f.ReqBytes = size
	return f
}

func hostOnly(req *http.Request, fallback string) string {
	h := req.Host
	if h == "" {
		h = fallback
	}
	if strings.Contains(h, ":") {
		if only, _, err := net.SplitHostPort(h); err == nil {
			return only
		}
	}
	return h
}

// forward sends the request upstream and returns the response.
func (p *Proxy) forward(req *http.Request, scheme, host, port string) (*http.Response, error) {
	outURL := *req.URL
	outURL.Scheme = scheme
	outURL.Host = req.Host
	if outURL.Host == "" {
		outURL.Host = net.JoinHostPort(host, port)
	} else if !strings.Contains(outURL.Host, ":") && !isDefaultPort(scheme, port) {
		outURL.Host = net.JoinHostPort(outURL.Host, port)
	}

	out, err := http.NewRequest(req.Method, outURL.String(), req.Body)
	if err != nil {
		return nil, fmt.Errorf("mitm: build upstream request: %w", err)
	}
	out.Header = req.Header.Clone()
	out.Header.Del("Proxy-Connection")
	out.ContentLength = req.ContentLength
	if p.upstreamRTT > 0 {
		time.Sleep(p.upstreamRTT)
	}
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		return nil, fmt.Errorf("mitm: upstream %s: %w", outURL.Host, err)
	}
	return resp, nil
}

func isDefaultPort(scheme, port string) bool {
	return (scheme == "http" && port == "80") || (scheme == "https" && port == "443")
}

// writeResponse serialises the upstream response to the client and
// returns the approximate byte count written.
func (p *Proxy) writeResponse(w io.Writer, resp *http.Response) (int, error) {
	// Both the body and the serialised head live in pooled buffers for
	// the duration of the write; neither escapes.
	bb := bodyPool.Get(int(resp.ContentLength))
	defer bodyPool.Put(bb)
	if _, err := io.Copy(bb, io.LimitReader(resp.Body, 64<<20)); err != nil {
		return 0, fmt.Errorf("mitm: read upstream body: %w", err)
	}
	body := bb.Bytes()
	hb := bodyPool.Get(512)
	defer bodyPool.Put(hb)
	fmt.Fprintf(hb, "HTTP/1.1 %03d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	hdr := resp.Header.Clone()
	hdr.Del("Transfer-Encoding")
	hdr.Set("Content-Length", fmt.Sprint(len(body)))
	if err := hdr.Write(hb); err != nil {
		return 0, err
	}
	hb.WriteString("\r\n")
	headLen := hb.Len()
	if _, err := w.Write(hb.Bytes()); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return headLen, err
	}
	return headLen + len(body), nil
}

// ParseURL is a small helper exposed for addons that need to re-parse a
// flow's URL.
func ParseURL(f *capture.Flow) (*url.URL, error) {
	return url.Parse(f.URL())
}
