package capture

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkFlow(id int64, host, browser string, origin Origin, reqBytes int) *Flow {
	return &Flow{
		ID: id, Time: time.Unix(1683900000, 0).UTC(),
		Browser: browser, Host: host, Method: "GET", Scheme: "https",
		Path: "/", Origin: origin, ReqBytes: reqBytes, RespBytes: 2 * reqBytes,
	}
}

func TestFlowURL(t *testing.T) {
	f := &Flow{Scheme: "https", Host: "example.com", Path: "/watch", RawQuery: "v=abc123"}
	if got := f.URL(); got != "https://example.com/watch?v=abc123" {
		t.Fatalf("URL = %q", got)
	}
}

func TestHeaderGetNilSafe(t *testing.T) {
	f := &Flow{}
	if f.HeaderGet("User-Agent") != "" {
		t.Fatal("nil header returned value")
	}
	f.Headers = http.Header{"User-Agent": []string{"sim"}}
	if f.HeaderGet("user-agent") != "sim" {
		t.Fatal("case-insensitive get failed")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Add(mkFlow(1, "a.example", "Chrome", OriginEngine, 100))
	s.Add(mkFlow(2, "b.example", "Chrome", OriginNative, 50))
	s.Add(mkFlow(3, "a.example", "Edge", OriginNative, 25))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := len(s.ByBrowser("Chrome")); got != 2 {
		t.Fatalf("ByBrowser = %d", got)
	}
	hosts := s.Hosts()
	if len(hosts) != 2 || hosts[0] != "a.example" || hosts[1] != "b.example" {
		t.Fatalf("hosts = %v", hosts)
	}
	if got := s.TotalBytes(false); got != 175 {
		t.Fatalf("req bytes = %d", got)
	}
	if got := s.TotalBytes(true); got != 175+350 {
		t.Fatalf("total bytes = %d", got)
	}
	natives := s.Filter(func(f *Flow) bool { return f.Origin == OriginNative })
	if len(natives) != 2 {
		t.Fatalf("natives = %d", len(natives))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNextFlowIDMonotonic(t *testing.T) {
	a, b := NextFlowID(), NextFlowID()
	if b <= a {
		t.Fatalf("ids not increasing: %d, %d", a, b)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	f := mkFlow(1, "site.example", "Yandex", OriginNative, 64)
	f.RawQuery = "url=aHR0cHM6Ly9leGFtcGxlLmNvbS8"
	f.Headers = http.Header{"User-Agent": []string{"YaBrowser"}}
	f.Body = []byte(`{"k":"v"}`)
	f.VisitURL = "https://example.com/"
	s.Add(f)
	s.Add(mkFlow(2, "other.example", "Yandex", OriginEngine, 10))

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.ReadJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded = %d", loaded.Len())
	}
	got := loaded.All()[0]
	if got.RawQuery != f.RawQuery || got.VisitURL != f.VisitURL || string(got.Body) != string(f.Body) {
		t.Fatalf("flow corrupted: %+v", got)
	}
	if got.Headers.Get("User-Agent") != "YaBrowser" {
		t.Fatal("headers lost")
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	s := NewStore()
	if err := s.ReadJSONL(bytes.NewReader([]byte("{\n"))); err == nil {
		t.Fatal("bad JSONL accepted")
	}
	// Blank lines are fine.
	if err := s.ReadJSONL(bytes.NewReader([]byte("\n\n"))); err != nil {
		t.Fatal(err)
	}
}

func TestDBStoreFor(t *testing.T) {
	db := NewDB()
	db.StoreFor(OriginEngine).Add(mkFlow(1, "x", "b", OriginEngine, 1))
	db.StoreFor(OriginNative).Add(mkFlow(2, "x", "b", OriginNative, 1))
	if db.Engine.Len() != 1 || db.Native.Len() != 1 {
		t.Fatalf("engine=%d native=%d", db.Engine.Len(), db.Native.Len())
	}
	db.Reset()
	if db.Engine.Len()+db.Native.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestVisitContext(t *testing.T) {
	vc := NewVisitContext()
	vc.SetBrowser(10089, "Opera")
	// Outside a visit: name only.
	v := vc.Lookup(10089)
	if v.Browser != "Opera" || v.URL != "" {
		t.Fatalf("idle lookup = %+v", v)
	}
	vc.BeginVisit(10089, "https://example.com/", true)
	v = vc.Lookup(10089)
	if v.URL != "https://example.com/" || !v.Incognito || v.Browser != "Opera" {
		t.Fatalf("visit lookup = %+v", v)
	}
	vc.EndVisit(10089)
	if vc.Lookup(10089).URL != "" {
		t.Fatal("visit survived EndVisit")
	}
	// Unknown UID.
	if vc.Lookup(99999).Browser != "" {
		t.Fatal("unknown uid has a browser")
	}
}

func TestHARExport(t *testing.T) {
	s := NewStore()
	f := mkFlow(1, "sba.yandex.net", "Yandex", OriginNative, 64)
	f.RawQuery = "url=aGVsbG8&fmt=b64"
	f.Headers = http.Header{"User-Agent": []string{"YaBrowser"}, "Content-Type": []string{"application/json"}}
	f.Body = []byte(`{"k":"v"}`)
	f.Status = 200
	f.VisitURL = "https://example.com/"
	s.Add(f)
	f2 := mkFlow(2, "blocked.example", "Yandex", OriginNative, 10)
	f2.Status = 403
	f2.Err = "vetoed: ad-host"
	s.Add(f2)

	var buf bytes.Buffer
	if err := s.WriteHAR(&buf); err != nil {
		t.Fatal(err)
	}
	var har HAR
	if err := json.Unmarshal(buf.Bytes(), &har); err != nil {
		t.Fatalf("exported HAR is not valid JSON: %v", err)
	}
	if har.Log.Version != "1.2" || len(har.Log.Entries) != 2 {
		t.Fatalf("har = %+v", har.Log)
	}
	e := har.Log.Entries[0]
	if e.Request.URL != "https://sba.yandex.net/?url=aGVsbG8&fmt=b64" {
		t.Fatalf("url = %q", e.Request.URL)
	}
	if e.Request.PostData == nil || e.Request.PostData.MimeType != "application/json" {
		t.Fatalf("postData = %+v", e.Request.PostData)
	}
	if len(e.Request.QueryString) != 2 {
		t.Fatalf("queryString = %v", e.Request.QueryString)
	}
	if !strings.Contains(e.Comment, "origin=native") || !strings.Contains(e.Comment, "visit=https://example.com/") {
		t.Fatalf("comment = %q", e.Comment)
	}
	e2 := har.Log.Entries[1]
	if e2.Response.Status != 403 || e2.Response.StatusText != "Forbidden" ||
		!strings.Contains(e2.Comment, "vetoed") {
		t.Fatalf("blocked entry = %+v", e2)
	}
}

// TestHARExportTransport pins the transport identity in HAR output: the
// negotiated protocol drives httpVersion and the transport/ALPN labels
// survive in the entry comment, for every data-plane protocol.
func TestHARExportTransport(t *testing.T) {
	s := NewStore()
	add := func(id int64, host, transport, alpn string) {
		f := mkFlow(id, host, "Chrome", OriginNative, 32)
		f.Transport = transport
		f.ALPN = alpn
		f.Status = 200
		s.Add(f)
	}
	add(1, "update.googleapis.com", TransportH2, "h2")
	add(2, "push.dolphin-browser.com", TransportWS, "http/1.1")
	add(3, "dns.google", TransportDoH, "h2")
	add(4, "plain.example", "", "")

	var buf bytes.Buffer
	if err := s.WriteHAR(&buf); err != nil {
		t.Fatal(err)
	}
	var har HAR
	if err := json.Unmarshal(buf.Bytes(), &har); err != nil {
		t.Fatal(err)
	}
	if len(har.Log.Entries) != 4 {
		t.Fatalf("entries = %d", len(har.Log.Entries))
	}
	want := []struct {
		version   string
		transport string
		alpn      string
	}{
		{"HTTP/2", "transport=h2", "alpn=h2"},
		{"HTTP/1.1", "transport=ws", "alpn=http/1.1"},
		{"HTTP/2", "transport=doh", "alpn=h2"},
		{"HTTP/1.1", "", ""},
	}
	for i, w := range want {
		e := har.Log.Entries[i]
		if e.Request.HTTPVersion != w.version || e.Response.HTTPVersion != w.version {
			t.Errorf("entry %d: httpVersion req=%q resp=%q, want %q",
				i, e.Request.HTTPVersion, e.Response.HTTPVersion, w.version)
		}
		if w.transport != "" && !strings.Contains(e.Comment, w.transport) {
			t.Errorf("entry %d: comment %q missing %q", i, e.Comment, w.transport)
		}
		if w.alpn != "" && !strings.Contains(e.Comment, w.alpn) {
			t.Errorf("entry %d: comment %q missing %q", i, e.Comment, w.alpn)
		}
		if w.transport == "" && strings.Contains(e.Comment, "transport=") {
			t.Errorf("entry %d: legacy flow grew a transport label: %q", i, e.Comment)
		}
	}
}

// Property: any flow survives a JSONL round trip field-for-field.
func TestPropertyJSONLRoundTrip(t *testing.T) {
	f := func(id int64, host, browser, query string, body []byte, status int, incog bool) bool {
		// JSON replaces invalid UTF-8 with U+FFFD; normalise inputs the
		// same way so the comparison tests our code, not the generator.
		host = strings.ToValidUTF8(host, "\uFFFD")
		browser = strings.ToValidUTF8(browser, "\uFFFD")
		query = strings.ToValidUTF8(query, "\uFFFD")
		orig := &Flow{
			ID: id, Time: time.Unix(1683900000, 0).UTC(), Browser: browser,
			Method: "POST", Scheme: "https", Host: host, Path: "/p",
			RawQuery: query, Body: body, Status: status, Incognito: incog,
			Origin: OriginNative,
		}
		s := NewStore()
		s.Add(orig)
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			return false
		}
		s2 := NewStore()
		if err := s2.ReadJSONL(&buf); err != nil {
			return false
		}
		got := s2.All()[0]
		return got.ID == orig.ID && got.Host == orig.Host && got.Browser == orig.Browser &&
			got.RawQuery == orig.RawQuery && bytes.Equal(got.Body, orig.Body) &&
			got.Status == orig.Status && got.Incognito == orig.Incognito &&
			got.Origin == orig.Origin && got.Time.Equal(orig.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
