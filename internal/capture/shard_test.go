package capture_test

import (
	"fmt"
	"sync"
	"testing"

	"panoptes/internal/capture"
)

// TestShardedStoreConcurrentHammer drives the striped store from 32
// writer goroutines while readers take merged and per-shard snapshots,
// then checks nothing was lost and every writer's own flows are still in
// its insertion order. Run under -race this is the store's concurrency
// contract test.
func TestShardedStoreConcurrentHammer(t *testing.T) {
	const (
		writers       = 32
		flowsPerGorou = 200
	)
	s := capture.NewStore()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers exercise every snapshot path while writes are in flight.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Len()
				_ = s.All()
				_ = s.Hosts()
				_ = s.TotalBytes(true)
				for i := 0; i < capture.NumShards; i++ {
					_ = s.ShardSnapshot(i)
				}
				_ = s.Filter(func(f *capture.Flow) bool { return f.ReqBytes > 0 })
			}
		}()
	}

	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < flowsPerGorou; i++ {
				s.Add(&capture.Flow{
					ID:       capture.NextFlowID(),
					Browser:  fmt.Sprintf("writer-%d", g),
					Host:     fmt.Sprintf("h%d.example", g),
					Path:     fmt.Sprintf("/%d", i),
					ReqBytes: 1,
				})
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	want := writers * flowsPerGorou
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	all := s.All()
	if len(all) != want {
		t.Fatalf("All returned %d flows, want %d", len(all), want)
	}
	seen := make(map[int64]bool, want)
	for _, f := range all {
		if seen[f.ID] {
			t.Fatalf("flow %d appears twice in merged snapshot", f.ID)
		}
		seen[f.ID] = true
	}
	// Each writer added its flows sequentially, so the merged insertion
	// order must preserve every writer's own sub-order.
	for g := 0; g < writers; g++ {
		name := fmt.Sprintf("writer-%d", g)
		next := 0
		for _, f := range all {
			if f.Browser != name {
				continue
			}
			if want := fmt.Sprintf("/%d", next); f.Path != want {
				t.Fatalf("writer %d flows out of order: got %s, want %s", g, f.Path, want)
			}
			next++
		}
		if next != flowsPerGorou {
			t.Fatalf("writer %d has %d flows in snapshot, want %d", g, next, flowsPerGorou)
		}
	}
	if got := s.TotalBytes(false); got != int64(want) {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	// Per-shard snapshots cover the store exactly once.
	total := 0
	for i := 0; i < capture.NumShards; i++ {
		total += len(s.ShardSnapshot(i))
	}
	if total != want {
		t.Fatalf("shard snapshots cover %d flows, want %d", total, want)
	}
	s.Reset()
	if s.Len() != 0 || len(s.All()) != 0 {
		t.Fatal("store not empty after Reset")
	}
}
