package capture

import (
	"bytes"
	"sync"
	"testing"
)

// recordingTap logs tap callbacks for assertions.
type recordingTap struct {
	mu       sync.Mutex
	observed []int64 // flow IDs
	retracts []int64
	seals    []int64
}

func (t *recordingTap) Observe(f *Flow) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observed = append(t.observed, f.ID)
}

func (t *recordingTap) Retract(attempt int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retracts = append(t.retracts, attempt)
}

func (t *recordingTap) Seal(attempt int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seals = append(t.seals, attempt)
}

func TestCommitTapAndOriginStamp(t *testing.T) {
	db := NewDB()
	tap := &recordingTap{}
	db.SetTap(tap)

	fe := &Flow{ID: 1}
	fn := &Flow{ID: 2, Attempt: 9}
	db.Engine.Add(fe)
	db.Native.Add(fn)
	if fe.Origin != OriginEngine || fn.Origin != OriginNative {
		t.Fatalf("origins not stamped: %q %q", fe.Origin, fn.Origin)
	}
	if len(tap.observed) != 2 {
		t.Fatalf("tap observed %v, want both flows", tap.observed)
	}

	if n := db.RemoveAttempt(9); n != 1 {
		t.Fatalf("RemoveAttempt removed %d, want 1", n)
	}
	db.SealAttempt(10)
	if len(tap.retracts) != 1 || tap.retracts[0] != 9 {
		t.Fatalf("tap retracts = %v, want [9]", tap.retracts)
	}
	if len(tap.seals) != 1 || tap.seals[0] != 10 {
		t.Fatalf("tap seals = %v, want [10]", tap.seals)
	}
}

func TestRetentionOffSpillAndQuarantine(t *testing.T) {
	db := NewDB()
	if err := db.SetRetention(RetainNone); err != nil {
		t.Fatal(err)
	}
	if db.FullyRetained() {
		t.Fatal("FullyRetained after RetainNone")
	}
	var spill bytes.Buffer
	db.Native.SetSpill(&spill)

	// Untagged flows spill immediately and never become resident.
	db.Native.Add(&Flow{ID: 1, Browser: "Chrome", ReqBytes: 10})
	// Attempt-tagged flows park until sealed...
	db.Native.Add(&Flow{ID: 2, Browser: "Chrome", ReqBytes: 20, Attempt: 5})
	if db.Native.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", db.Native.Pending())
	}
	db.SealAttempt(5)
	// ...and quarantined flows are dropped before the spill sink.
	db.Native.Add(&Flow{ID: 3, Browser: "Chrome", ReqBytes: 30, Attempt: 6})
	if n := db.RemoveAttempt(6); n != 1 {
		t.Fatalf("RemoveAttempt removed %d, want 1", n)
	}

	if db.Native.Len() != 0 || db.Native.Pending() != 0 {
		t.Fatalf("resident = %d pending = %d, want 0/0", db.Native.Len(), db.Native.Pending())
	}
	if db.Native.Seen() != 3 {
		t.Fatalf("seen = %d, want 3", db.Native.Seen())
	}
	if err := db.Native.SpillErr(); err != nil {
		t.Fatal(err)
	}

	// The spill file holds exactly the committed flows, in commit order.
	back := NewStore()
	if err := back.ReadJSONL(&spill); err != nil {
		t.Fatal(err)
	}
	flows := back.All()
	if len(flows) != 2 || flows[0].ID != 1 || flows[1].ID != 2 {
		ids := make([]int64, len(flows))
		for i, f := range flows {
			ids[i] = f.ID
		}
		t.Fatalf("spilled flow IDs = %v, want [1 2]", ids)
	}
}

func TestRetentionNativeKeepsNativeOnly(t *testing.T) {
	db := NewDB()
	if err := db.SetRetention(RetainNative); err != nil {
		t.Fatal(err)
	}
	db.Engine.Add(&Flow{ID: 1})
	db.Native.Add(&Flow{ID: 2})
	if db.Engine.Len() != 0 || db.Native.Len() != 1 {
		t.Fatalf("engine = %d native = %d, want 0/1", db.Engine.Len(), db.Native.Len())
	}
	if err := db.SetRetention("bogus"); err == nil {
		t.Fatal("bogus retention mode accepted")
	}
}
