package capture

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"time"
)

// HAR export (HTTP Archive 1.2): flows serialise to the interchange
// format browser devtools and proxy tools consume, so a Panoptes capture
// can be inspected with standard HAR viewers.

// HAR is the top-level archive document.
type HAR struct {
	Log HARLog `json:"log"`
}

// HARLog is the archive body.
type HARLog struct {
	Version string     `json:"version"`
	Creator HARCreator `json:"creator"`
	Entries []HAREntry `json:"entries"`
}

// HARCreator identifies the producing tool.
type HARCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// HAREntry is one request/response pair.
type HAREntry struct {
	StartedDateTime string      `json:"startedDateTime"`
	Time            float64     `json:"time"`
	Request         HARRequest  `json:"request"`
	Response        HARResponse `json:"response"`
	Comment         string      `json:"comment,omitempty"`
}

// HARRequest is the request half.
type HARRequest struct {
	Method      string    `json:"method"`
	URL         string    `json:"url"`
	HTTPVersion string    `json:"httpVersion"`
	Headers     []HARPair `json:"headers"`
	QueryString []HARPair `json:"queryString"`
	PostData    *HARPost  `json:"postData,omitempty"`
	HeadersSize int       `json:"headersSize"`
	BodySize    int       `json:"bodySize"`
}

// HARResponse is the response half.
type HARResponse struct {
	Status      int       `json:"status"`
	StatusText  string    `json:"statusText"`
	HTTPVersion string    `json:"httpVersion"`
	Headers     []HARPair `json:"headers"`
	HeadersSize int       `json:"headersSize"`
	BodySize    int       `json:"bodySize"`
}

// HARPair is a name/value item.
type HARPair struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// HARPost carries a request body.
type HARPost struct {
	MimeType string `json:"mimeType"`
	Text     string `json:"text"`
}

// harHTTPVersion maps a flow's transport to the HAR httpVersion string.
// WebSocket frames and DoH messages ride the HTTP version of the
// connection that carried them, which the ALPN field names; "h2" (from
// either side) means HTTP/2 framing on the wire.
func harHTTPVersion(f *Flow) string {
	if f.Transport == TransportH2 || f.ALPN == "h2" {
		return "HTTP/2"
	}
	return "HTTP/1.1"
}

// ToHAREntry converts a flow.
func (f *Flow) ToHAREntry() HAREntry {
	req := HARRequest{
		Method:      f.Method,
		URL:         f.URL(),
		HTTPVersion: harHTTPVersion(f),
		HeadersSize: -1,
		BodySize:    len(f.Body),
	}
	if f.Headers != nil {
		for k, vs := range f.Headers {
			for _, v := range vs {
				req.Headers = append(req.Headers, HARPair{Name: k, Value: v})
			}
		}
	}
	if vals, err := url.ParseQuery(f.RawQuery); err == nil {
		for k, vs := range vals {
			for _, v := range vs {
				req.QueryString = append(req.QueryString, HARPair{Name: k, Value: v})
			}
		}
	}
	if len(f.Body) > 0 {
		req.PostData = &HARPost{MimeType: f.HeaderGet("Content-Type"), Text: string(f.Body)}
	}

	comment := fmt.Sprintf("origin=%s browser=%s", f.Origin, f.Browser)
	if f.Transport != "" {
		comment += " transport=" + f.Transport
	}
	if f.ALPN != "" {
		comment += " alpn=" + f.ALPN
	}
	if f.VisitURL != "" {
		comment += " visit=" + f.VisitURL
	}
	if f.Err != "" {
		comment += " err=" + f.Err
	}
	return HAREntry{
		StartedDateTime: f.Time.Format(time.RFC3339Nano),
		Time:            1, // per-exchange latency is not modelled
		Request:         req,
		Response: HARResponse{
			Status: f.Status, StatusText: statusText(f.Status), HTTPVersion: harHTTPVersion(f),
			HeadersSize: -1, BodySize: f.RespBytes,
		},
		Comment: comment,
	}
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 502:
		return "Bad Gateway"
	case 0:
		return ""
	}
	return fmt.Sprintf("Status %d", code)
}

// WriteHAR exports the store as a HAR 1.2 document.
func (s *Store) WriteHAR(w io.Writer) error {
	har := HAR{Log: HARLog{
		Version: "1.2",
		Creator: HARCreator{Name: "panoptes", Version: "1.0"},
	}}
	for _, f := range s.All() {
		har.Log.Entries = append(har.Log.Entries, f.ToHAREntry())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(har); err != nil {
		return fmt.Errorf("capture: encode HAR: %w", err)
	}
	return nil
}
