// Flow recycling. The MITM data plane builds one Flow per intercepted
// exchange; at campaign rates that is the dominant steady-state
// allocation. Flows acquired from the pool are reference-counted so
// every retainer along the commit path (producer, store shard, pending
// quarantine buffer, export batches, memory sinks) pins the record
// independently, and the struct — with its Headers map and Body buffer —
// returns to the pool only when the last holder releases it.
//
// Ref/Release are nil-safe no-ops for flows built by hand (test
// literals, JSONL round-trips): only AcquireFlow marks a flow pooled,
// so untracked flows keep ordinary GC lifetimes.
package capture

import (
	"sync"
	"sync/atomic"
)

// flowPool recycles Flow structs together with their Headers map and
// Body buffer capacity.
var flowPool = sync.Pool{New: func() any { return new(Flow) }}

// AcquireFlow returns a recycled (or new) Flow holding one reference,
// owned by the caller. The Headers map and Body buffer may be non-nil
// with stale capacity; all fields are otherwise zero.
func AcquireFlow() *Flow {
	f := flowPool.Get().(*Flow)
	f.pooled = true
	atomic.StoreInt32(&f.refs, 1)
	return f
}

// Ref pins a pooled flow for an additional holder. No-op on nil or
// unpooled flows.
func (f *Flow) Ref() {
	if f == nil || !f.pooled {
		return
	}
	atomic.AddInt32(&f.refs, 1)
}

// Release drops one reference; the last release recycles the flow. The
// caller must not touch the flow afterwards. No-op on nil or unpooled
// flows.
func (f *Flow) Release() {
	if f == nil || !f.pooled {
		return
	}
	switch n := atomic.AddInt32(&f.refs, -1); {
	case n == 0:
		f.resetForReuse()
		flowPool.Put(f)
	case n < 0:
		panic("capture: Flow released more times than referenced")
	}
}

// resetForReuse zeroes the flow while keeping its Headers map and Body
// capacity for the next exchange.
func (f *Flow) resetForReuse() {
	hdr := f.Headers
	for k := range hdr {
		delete(hdr, k)
	}
	*f = Flow{Headers: hdr, Body: f.Body[:0]}
}
