package capture

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireFlowStartsClean(t *testing.T) {
	f := AcquireFlow()
	f.ID = 7
	f.Host = "a.example"
	f.Headers = map[string][]string{"X-Id": {"abc"}}
	f.Body = append(f.Body, "payload"...)
	f.Time = time.Unix(10, 0)
	f.Release()

	g := AcquireFlow()
	defer g.Release()
	if g.ID != 0 || g.Host != "" || !g.Time.IsZero() || len(g.Body) != 0 {
		t.Fatalf("recycled flow not reset: %+v", g)
	}
	if len(g.Headers) != 0 {
		t.Fatalf("recycled flow kept header keys: %v", g.Headers)
	}
}

func TestReleaseRecyclesOnLastHolder(t *testing.T) {
	f := AcquireFlow()
	f.Host = "pinned.example"
	f.Ref() // second holder

	f.Release() // first holder gone; the flow must stay intact
	if f.Host != "pinned.example" {
		t.Fatal("flow reset while still referenced")
	}
	f.Release() // last holder: recycled now
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	// Reaching a negative count through the public API needs two racing
	// releases; force the precondition directly instead.
	f := AcquireFlow()
	atomic.StoreInt32(&f.refs, 0)
	f.Release()
}

func TestUnpooledFlowsIgnoreRefcounting(t *testing.T) {
	f := &Flow{ID: 1, Host: "literal.example"}
	f.Ref()
	f.Release()
	f.Release() // extra releases never panic on hand-built flows
	if f.Host != "literal.example" {
		t.Fatal("unpooled flow must not be reset")
	}
	var nilFlow *Flow
	nilFlow.Ref()
	nilFlow.Release()
}

func TestStoreReleasesOnRemoveAndReset(t *testing.T) {
	s := NewStore()
	f := AcquireFlow()
	f.ID = 1
	s.Add(f)
	f.Release() // producer done; store still holds its ref

	s.RemoveWhere(func(fl *Flow) bool { return fl.ID == 1 })
	// The store's ref was the last one: the flow is back in the pool, so
	// a fresh acquire sees zeroed fields.
	g := AcquireFlow()
	defer g.Release()
	if g.ID != 0 {
		t.Fatalf("flow not recycled after RemoveWhere: ID=%d", g.ID)
	}

	h := AcquireFlow()
	h.ID = 2
	s.Add(h)
	h.Release()
	s.Reset()
	i := AcquireFlow()
	defer i.Release()
	if i.ID != 0 {
		t.Fatalf("flow not recycled after Reset: ID=%d", i.ID)
	}
}
