// Package pipeline is the streaming analysis plane of the measurement
// stack. A Pipeline is registered as the commit tap on the capture
// databases: every flow committed by the proxy is fanned out, in
// commit order, to a set of registered Analyzers which fold it into
// incremental state. The campaign runner's attempt quarantine (PR 3)
// is wired into Retract, so a faulted attempt's observations are
// undone before the attempt is retried and never pollute the
// incremental results. An analyzer's Finalize output is required to be
// byte-identical to the corresponding batch pass over the committed
// store — the batch functions in internal/analysis, internal/leak and
// internal/pii are thin wrappers that replay a store through the same
// analyzers (one code path, two drive modes).
package pipeline

import (
	"sync"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/obs"
)

// Analyzer is an incremental analysis folded over the committed flow
// stream. Observe is called once per committed flow, from the
// committing goroutine (so it must be safe for concurrent use).
// Retract undoes every observation tagged with the given attempt id —
// the campaign runner calls it when an attempt faults and its flows
// are quarantined. Finalize returns the analysis result; it must be a
// pure function of the multiset of observed-and-not-retracted flows.
type Analyzer interface {
	Observe(f *capture.Flow)
	Retract(attempt int64)
	Finalize() any
}

// Sealer is optionally implemented by analyzers that keep per-attempt
// undo state (see Journal). Seal tells the analyzer the attempt
// committed successfully and its undo log can be discarded.
type Sealer interface {
	Seal(attempt int64)
}

// Resetter is optionally implemented by analyzers that can drop all
// accumulated state, mirroring capture.DB.Reset.
type Resetter interface {
	Reset()
}

func init() {
	obs.Default.Help("pipeline_observed_total", "Flows observed by each streaming analyzer.")
	obs.Default.Help("pipeline_observe_seconds", "Per-flow observe latency of each streaming analyzer.")
	obs.Default.Help("pipeline_retractions_total", "Attempt retractions processed by each streaming analyzer.")
	obs.Default.Help("pipeline_analyzers", "Analyzers currently registered on the streaming pipeline.")
}

// observeBuckets spans 1µs .. ~262ms, the plausible range for a
// per-flow incremental fold.
var observeBuckets = obs.ExponentialBuckets(1e-6, 4, 10)

type entry struct {
	name      string
	a         Analyzer
	observed  *obs.Counter
	retracted *obs.Counter
	latency   *obs.Histogram
}

// Pipeline fans committed flows out to registered analyzers in
// registration order. It implements capture.Tap.
type Pipeline struct {
	mu      sync.RWMutex
	entries []*entry
	gauge   *obs.Gauge
}

// New returns an empty pipeline.
func New() *Pipeline {
	return &Pipeline{gauge: obs.Default.Gauge("pipeline_analyzers")}
}

// Register appends an analyzer under the given name. Names are used
// for metric labels, Unregister and Results; registering the same name
// twice keeps both (Unregister removes all).
func (p *Pipeline) Register(name string, a Analyzer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = append(p.entries, &entry{
		name:      name,
		a:         a,
		observed:  obs.Default.Counter("pipeline_observed_total", "analyzer", name),
		retracted: obs.Default.Counter("pipeline_retractions_total", "analyzer", name),
		latency:   obs.Default.Histogram("pipeline_observe_seconds", observeBuckets, "analyzer", name),
	})
	p.gauge.Set(float64(len(p.entries)))
}

// Unregister removes every analyzer registered under name.
func (p *Pipeline) Unregister(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.entries[:0]
	for _, e := range p.entries {
		if e.name != name {
			kept = append(kept, e)
		}
	}
	p.entries = kept
	p.gauge.Set(float64(len(p.entries)))
}

// Observe feeds one committed flow to every analyzer in registration
// order. Called by the capture store from the committing goroutine.
func (p *Pipeline) Observe(f *capture.Flow) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		start := time.Now()
		e.a.Observe(f)
		e.latency.Observe(time.Since(start).Seconds())
		e.observed.Inc()
	}
}

// Retract undoes every analyzer observation tagged with the attempt.
func (p *Pipeline) Retract(attempt int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		e.a.Retract(attempt)
		e.retracted.Inc()
	}
}

// Seal marks the attempt committed on every analyzer that keeps
// per-attempt undo state.
func (p *Pipeline) Seal(attempt int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		if s, ok := e.a.(Sealer); ok {
			s.Seal(attempt)
		}
	}
}

// Reset drops accumulated state on every analyzer that supports it.
func (p *Pipeline) Reset() {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		if r, ok := e.a.(Resetter); ok {
			r.Reset()
		}
	}
}

// Results finalizes every registered analyzer, keyed by name.
func (p *Pipeline) Results() map[string]any {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]any, len(p.entries))
	for _, e := range p.entries {
		out[e.name] = e.a.Finalize()
	}
	return out
}

// Names lists registered analyzers in registration order.
func (p *Pipeline) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, len(p.entries))
	for i, e := range p.entries {
		out[i] = e.name
	}
	return out
}
