package pipeline

// Journal is the per-attempt undo log analyzers use to implement
// Retract. Each Observe of an attempt-tagged flow notes one or more
// undo closures; Retract runs them in reverse order and Seal discards
// them once the attempt commits, so memory is bounded by the number of
// in-flight attempts. Attempt 0 means "committed outside any attempt
// window" (settle traffic, checkpoint preloads, idle sessions) and is
// never journalled. A Journal is not safe for concurrent use on its
// own — callers guard it with the analyzer's state mutex, which they
// already hold to apply the observation itself.
type Journal struct {
	undos map[int64][]func()
}

// Note records an undo closure for the attempt. No-op for attempt 0.
func (j *Journal) Note(attempt int64, undo func()) {
	if attempt == 0 {
		return
	}
	if j.undos == nil {
		j.undos = make(map[int64][]func())
	}
	j.undos[attempt] = append(j.undos[attempt], undo)
}

// Retract runs the attempt's undo closures in reverse order and
// reports how many were run.
func (j *Journal) Retract(attempt int64) int {
	undos := j.undos[attempt]
	for i := len(undos) - 1; i >= 0; i-- {
		undos[i]()
	}
	delete(j.undos, attempt)
	return len(undos)
}

// Seal discards the attempt's undo log: the attempt committed and can
// no longer be retracted.
func (j *Journal) Seal(attempt int64) {
	delete(j.undos, attempt)
}

// Reset drops all undo state.
func (j *Journal) Reset() {
	j.undos = nil
}

// Open reports how many attempts currently hold undo state.
func (j *Journal) Open() int {
	return len(j.undos)
}
