package pipeline

import (
	"sync"
	"testing"

	"panoptes/internal/capture"
)

// countAnalyzer counts flows per browser with full retract support —
// the smallest possible incremental analyzer.
type countAnalyzer struct {
	mu     sync.Mutex
	j      Journal
	counts map[string]int
}

func newCountAnalyzer() *countAnalyzer {
	return &countAnalyzer{counts: make(map[string]int)}
}

func (a *countAnalyzer) Observe(f *capture.Flow) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := f.Browser
	a.counts[b]++
	a.j.Note(f.Attempt, func() { a.counts[b]-- })
}

func (a *countAnalyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

func (a *countAnalyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

func (a *countAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts = make(map[string]int)
	a.j.Reset()
}

func (a *countAnalyzer) Finalize() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.counts))
	for k, v := range a.counts {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

func flow(browser string, attempt int64) *capture.Flow {
	return &capture.Flow{Browser: browser, Attempt: attempt}
}

func TestRetractUndoesAttempt(t *testing.T) {
	p := New()
	a := newCountAnalyzer()
	p.Register("count", a)

	p.Observe(flow("Chrome", 0))
	p.Observe(flow("Chrome", 7))
	p.Observe(flow("Brave", 7))
	p.Observe(flow("Chrome", 8))

	p.Retract(7)
	p.Seal(8)

	got := a.Finalize().(map[string]int)
	if got["Chrome"] != 2 || got["Brave"] != 0 {
		t.Fatalf("after retract: %v, want Chrome=2 Brave=0", got)
	}
	if a.j.Open() != 0 {
		t.Fatalf("journal still holds %d open attempts", a.j.Open())
	}
}

func TestJournalReverseOrder(t *testing.T) {
	var j Journal
	var order []int
	j.Note(1, func() { order = append(order, 1) })
	j.Note(1, func() { order = append(order, 2) })
	j.Note(1, func() { order = append(order, 3) })
	if n := j.Retract(1); n != 3 {
		t.Fatalf("retracted %d undos, want 3", n)
	}
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Fatalf("undo order = %v, want reverse [3 2 1]", order)
	}
	// Attempt 0 is never journalled.
	j.Note(0, func() { t.Fatal("attempt 0 journalled") })
	if j.Open() != 0 {
		t.Fatalf("open = %d, want 0", j.Open())
	}
}

func TestRegisterUnregisterReset(t *testing.T) {
	p := New()
	a := newCountAnalyzer()
	p.Register("count", a)
	if names := p.Names(); len(names) != 1 || names[0] != "count" {
		t.Fatalf("names = %v", names)
	}
	p.Observe(flow("Chrome", 0))
	p.Reset()
	if got := a.Finalize().(map[string]int); len(got) != 0 {
		t.Fatalf("after reset: %v", got)
	}
	p.Unregister("count")
	p.Observe(flow("Chrome", 0))
	if got := a.Finalize().(map[string]int); len(got) != 0 {
		t.Fatalf("unregistered analyzer still observed: %v", got)
	}
	if res := p.Results(); len(res) != 0 {
		t.Fatalf("results after unregister: %v", res)
	}
}

// TestConcurrentObserveRetract exercises the tap under the same shape
// of concurrency the campaign produces: several browsers committing
// flows in parallel, some attempts retracted, some sealed.
func TestConcurrentObserveRetract(t *testing.T) {
	p := New()
	a := newCountAnalyzer()
	p.Register("count", a)

	const browsers = 8
	const perBrowser = 50
	var wg sync.WaitGroup
	for b := 0; b < browsers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			name := string(rune('A' + b))
			// Attempts are process-unique, sequential per browser.
			for i := 0; i < perBrowser; i++ {
				att := int64(b*perBrowser + i + 1)
				p.Observe(&capture.Flow{Browser: name, Attempt: att})
				if i%2 == 0 {
					p.Retract(att)
					p.Observe(&capture.Flow{Browser: name, Attempt: 0})
				} else {
					p.Seal(att)
				}
			}
		}(b)
	}
	wg.Wait()

	got := a.Finalize().(map[string]int)
	for b := 0; b < browsers; b++ {
		name := string(rune('A' + b))
		if got[name] != perBrowser {
			t.Fatalf("browser %s count = %d, want %d", name, got[name], perBrowser)
		}
	}
	if a.j.Open() != 0 {
		t.Fatalf("journal leaked %d open attempts", a.j.Open())
	}
}
